// Semi-trusted third party (paper §III-C).
//
// The STP owns the global Paillier key pair (pk_G, sk_G) and a directory of
// SU public keys, and provides exactly one service: key conversion. Given
// the blinded indicator matrix Ṽ (under pk_G), it decrypts each entry, maps
// the sign to ±1 (eq. (15)) and re-encrypts under the requesting SU's own
// key pk_j. It never sees unblinded interference values — the ε/α/β
// blinding applied by the SDC (eq. (14)) hides both magnitude and sign.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include <optional>

#include "bigint/random_source.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "crypto/chacha_rng.hpp"
#include "crypto/paillier.hpp"
#include "crypto/threshold_paillier.hpp"
#include "net/bus.hpp"
#include "net/reliable_channel.hpp"

namespace pisa::exec {
class ThreadPool;
}

namespace pisa::core {

class StpServer {
 public:
  /// Generates the global key pair from `rng` (kept by reference; must
  /// outlive the server).
  StpServer(const PisaConfig& cfg, bn::RandomSource& rng);

  const crypto::PaillierPublicKey& group_key() const { return group_.pk; }

  /// SU key directory (paper: "Each SU i ... uploads pk_i to STP").
  void register_su_key(std::uint32_t su_id, crypto::PaillierPublicKey pk);
  const crypto::PaillierPublicKey& su_key(std::uint32_t su_id) const;

  /// The key-conversion service, callable directly (tests, benches) or via
  /// the network handler.
  ConvertResponseMsg convert(const ConvertRequestMsg& request);

  /// Batched conversion (DESIGN.md §3.5): one parallel_for over the flat
  /// entry list of every item, randomness staged sequentially in (item,
  /// entry) order — per-item outputs are byte-identical to item-by-item
  /// convert() calls issued in the same order.
  ConvertBatchResponseMsg convert_batch(const ConvertBatchMsg& batch);

  /// §3.8 budget sign probe: decrypt each blinded ε·(α·Ñ − β̃) entry
  /// (threshold-combined when the SDC attached partials) and return one
  /// sign byte per packed slot. No re-encryption, no SU key involved — the
  /// values stay ε-masked, so the STP learns no budget signs itself.
  BudgetProbeResponseMsg probe_signs(const BudgetProbeMsg& probe);

  /// Offline optimization: precompute `count` r^n factors for SU `su_id`'s
  /// key so the conversion re-encryption costs one modular multiplication
  /// per entry instead of a full encryption. The STP knows every pk_j in
  /// advance, so this moves its dominant cost off the request path — the
  /// same trick §VI-A applies to SU request preparation.
  void precompute_su_randomizers(std::uint32_t su_id, std::size_t count);

  /// Background pool maintenance for the always-warm mode
  /// (PisaConfig::stp_pool_target > 0): top every auto-managed pool back up
  /// to its target from the SU's private refill stream, modexps on the
  /// shared thread pool. Called off the request path (PisaSystem invokes it
  /// after each network drain); pool contents depend only on registration
  /// order and pop counts, never on when refills run.
  void maintain_pools();

  /// Available precomputed factors for one SU (0 if no pool).
  std::size_t pool_available(std::uint32_t su_id) const;

  /// Execution lanes for conversion and pool refills (nullptr = sequential).
  void set_thread_pool(std::shared_ptr<exec::ThreadPool> pool);

  /// Threshold mode (PisaConfig::threshold_stp): at setup this server acts
  /// as the dealer, keeps share 2 and hands share 1 to the SDC (a deployed
  /// system would use a distributed keygen instead). Afterwards, convert()
  /// only opens Ṽ entries whose SDC partial decryption is attached.
  const crypto::ThresholdKeyShare& sdc_share() const;
  bool threshold_mode() const { return deal_.has_value(); }

  /// Wire onto a transport (raw SimulatedNetwork or ReliableTransport)
  /// under `name`, replying to the sender of each conversion request.
  /// Handlers are idempotent under at-least-once delivery: replayed frames
  /// are dropped by a (sender, seq) window, and key registration is
  /// last-writer-wins either way.
  void attach(net::Transport& net, const std::string& name = "stp");

  std::uint64_t conversions_served() const { return conversions_; }
  std::uint64_t entries_converted() const { return entries_; }
  std::uint64_t batches_served() const { return batches_; }
  std::uint64_t probes_served() const { return probes_; }
  std::uint64_t probe_slots_signed() const { return probe_slots_; }

  /// TEST/AUDIT ONLY: decrypt a group-key ciphertext. Models what a curious
  /// STP could compute; the privacy tests use it to show blinded values
  /// carry no sign information.
  bn::BigInt peek_decrypt_signed(const crypto::PaillierCiphertext& ct) const {
    return group_.sk.decrypt_signed(ct);
  }

 private:
  /// One Ṽ entry of a (possibly batched) conversion, flattened: where its
  /// ciphertext lives, which SU key re-encrypts it, and the pre-staged
  /// randomness (pooled factor, fast-base exponent, or fresh r, by mode).
  struct ConvertEntry;

  /// Sequential randomness pre-pass for `count` entries of one SU, written
  /// into entries[base..base+count): drain the SU's pool while it lasts,
  /// then fall back to the cached fast base (short exponents) or fresh
  /// random_coprime draws from rng_ for the remainder.
  void stage_randomness(std::uint32_t su_id, std::size_t count,
                        std::vector<ConvertEntry>& entries, std::size_t base);

  /// The conversion kernel: decrypt (threshold or direct), per-slot sign
  /// map, re-encrypt under pk_j — one parallel_for over all flat entries.
  void convert_entries(std::vector<ConvertEntry>& entries);

  PisaConfig cfg_;
  bn::RandomSource& rng_;
  crypto::PaillierKeyPair group_;
  std::shared_ptr<exec::ThreadPool> exec_;
  std::map<std::uint32_t, crypto::PaillierPublicKey> su_keys_;
  std::map<std::uint32_t, crypto::RandomizerPool> su_pools_;
  std::map<std::uint32_t, crypto::FastRandomizerBase> su_fast_bases_;
  /// Private refill stream per auto-managed (always-warm) pool, seeded at
  /// registration — keeps pool contents independent of refill timing.
  std::map<std::uint32_t, crypto::ChaChaRng> su_streams_;
  std::optional<crypto::ThresholdDeal> deal_;  // set iff cfg.threshold_stp
  net::DedupWindow seen_frames_;  // at-least-once replay defence
  std::uint64_t conversions_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t probe_slots_ = 0;

  /// Private runtime stream for conversion randomness (fast-base setup,
  /// refill-stream seeds, fresh factors), seeded once from the construction
  /// rng. Conversion outputs then depend only on this entity's own draw
  /// order — never on how its work interleaves with other parties on a
  /// shared simulation rng — which is what makes batched and per-request
  /// conversion byte-identical for every batch composition (DESIGN.md
  /// §3.5). Declared last: its seed draw follows key generation.
  crypto::ChaChaRng stream_;
};

}  // namespace pisa::core
