// PISA protocol configuration (paper §III-C, §IV-B).
//
// Validation enforces the arithmetic headroom the blinding tricks need:
// eq. (14) computes α·I − β inside the Paillier plaintext space under the
// centered lift, so |α·I| must stay below n/2. With 60-bit quantized powers
// and an X scalar of ~8 bits, |I| < 2^69; blind_bits more bits of α gives
// |α·I| < 2^(69 + blind_bits), which must fit under paillier_bits − 2.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "watch/config.hpp"

namespace pisa::core {

/// Reliable-delivery knobs for the simulated network (net::ReliableTransport).
/// Disabled by default: the perfect-delivery bus reproduces the paper's
/// Figure 6 byte accounting exactly; the chaos suites enable it together
/// with a seeded net::FaultPlan to prove the protocol survives loss,
/// duplication, reordering and corruption.
struct ReliabilityConfig {
  bool enabled = false;
  std::size_t max_retries = 6;      ///< retransmissions before a typed failure
  double timeout_us = 4'000.0;      ///< initial retransmission timeout
  double backoff = 2.0;             ///< exponential backoff multiplier
  std::size_t dedup_window = 4096;  ///< (sender, seq) replay memory per peer
};

struct PisaConfig {
  watch::WatchConfig watch;

  std::size_t paillier_bits = 2048;  // group key and SU keys (NIST 112-bit level)
  std::size_t rsa_bits = 1024;       // license signature key
  std::size_t blind_bits = 128;      // α, β, η one-time blinding factors
  int mr_rounds = 16;                // Miller-Rabin rounds for keygen

  /// Compute lanes for the batch homomorphic pipeline (src/exec). 1 =
  /// today's sequential loops. All randomness is sampled sequentially
  /// before the parallel modexp sections, so protocol outputs are
  /// bit-identical at every setting — the knob trades wall-clock only.
  std::size_t num_threads = 1;

  /// Use the fixed-base r^n table (crypto::FastRandomizerBase) for
  /// randomizer-pool refills. Off by default: the short-exponent sampling
  /// it implies is a security trade-off (see paillier.hpp).
  bool fast_randomizers = false;

  /// Threshold-STP mode (the paper's §VII future-work direction): the group
  /// decryption exponent is 2-of-2 shared between SDC and STP, so the STP
  /// alone can no longer decrypt stored PU/SU ciphertexts — it can only
  /// open the blinded Ṽ values the SDC explicitly co-decrypts during key
  /// conversion. Costs one extra exponentiation per entry at the SDC and
  /// one extra ciphertext per entry on the SDC→STP link.
  bool threshold_stp = false;

  /// Reliable transport over the simulated network (chaos/fault testing).
  ReliabilityConfig reliability;

  /// Throws std::invalid_argument when parameter combinations cannot work.
  void validate() const {
    if (paillier_bits < 64 || paillier_bits % 2 != 0)
      throw std::invalid_argument("PisaConfig: bad paillier_bits");
    if (rsa_bits + 2 > paillier_bits)
      throw std::invalid_argument(
          "PisaConfig: rsa_bits must be < paillier_bits (eq. (17) embeds the "
          "signature value in a Paillier plaintext slot)");
    // |I| <= max(N) + X*max(F) < 2^(q+9) with q = quantizer width.
    std::size_t value_bits = watch.quantizer.max_bits + 9;
    if (value_bits + blind_bits + 2 > paillier_bits)
      throw std::invalid_argument(
          "PisaConfig: blind_bits + value width exceed the plaintext space");
    if (blind_bits < 8)
      throw std::invalid_argument("PisaConfig: blind_bits too small to hide values");
    if (num_threads == 0)
      throw std::invalid_argument("PisaConfig: num_threads must be >= 1");
    if (reliability.enabled) {
      if (reliability.timeout_us <= 0)
        throw std::invalid_argument("PisaConfig: reliability.timeout_us must be > 0");
      if (reliability.backoff < 1.0)
        throw std::invalid_argument("PisaConfig: reliability.backoff must be >= 1");
      if (reliability.dedup_window == 0)
        throw std::invalid_argument("PisaConfig: reliability.dedup_window must be >= 1");
    }
  }
};

}  // namespace pisa::core
