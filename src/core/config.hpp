// PISA protocol configuration (paper §III-C, §IV-B).
//
// Validation enforces the arithmetic headroom the blinding tricks need:
// eq. (14) computes α·I − β inside the Paillier plaintext space under the
// centered lift, so |α·I| must stay below n/2. With 60-bit quantized powers
// and an X scalar of ~8 bits, |I| < 2^69; blind_bits more bits of α gives
// |α·I| < 2^(69 + blind_bits), which must fit under paillier_bits − 2.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "watch/config.hpp"

namespace pisa::core {

/// Reliable-delivery knobs for the simulated network (net::ReliableTransport).
/// Disabled by default: the perfect-delivery bus reproduces the paper's
/// Figure 6 byte accounting exactly; the chaos suites enable it together
/// with a seeded net::FaultPlan to prove the protocol survives loss,
/// duplication, reordering and corruption.
struct ReliabilityConfig {
  bool enabled = false;
  std::size_t max_retries = 6;      ///< retransmissions before a typed failure
  double timeout_us = 4'000.0;      ///< initial retransmission timeout
  double backoff = 2.0;             ///< exponential backoff multiplier
  std::size_t dedup_window = 4096;  ///< (sender, seq) replay memory per peer
};

/// Write-ahead durability for the SDC state engine (DESIGN.md §3.6).
/// Disabled by default: the in-memory engine then behaves exactly like the
/// pre-durability SdcServer, byte for byte. Enabled, every state mutation is
/// journaled to a per-shard WAL before it is applied, shards periodically
/// compact their log into a sealed snapshot, and a restarted SDC recovers
/// byte-identical Ñ/W̃ state from the store directory.
struct DurabilityConfig {
  bool enabled = false;
  std::string dir;  ///< store directory; required when enabled

  /// Auto-compact a shard after this many WAL records (0 = only explicit
  /// checkpoint() calls compact).
  std::size_t snapshot_every = 256;

  /// License serials are reserved from the WAL in chunks of this size, so
  /// the request hot path journals one tiny record every `serial_reserve`
  /// licenses instead of one per license. A crash skips at most the
  /// unissued remainder of a chunk — serials stay strictly monotonic across
  /// restarts, which is what makes replayed licenses detectable.
  std::size_t serial_reserve = 64;
};

/// Encrypted cuckoo-filter denial fast path (DESIGN.md §3.8). Disabled by
/// default: the SDC then behaves exactly like the pre-filter server, byte
/// for byte. Enabled, the SDC tracks provably-exhausted (channel-group,
/// block) cells in a keyed cuckoo filter backed by an exact set, and denies
/// a request whose disclosed block range touches a confirmed-exhausted cell
/// in one cheap round — no Ṽ blinding, no STP round-trip. Cuckoo false
/// positives are vetoed by the exact set, so decisions are always identical
/// to the filter-off pipeline (no false denials, ever).
struct DenialFilterConfig {
  bool enabled = false;

  /// Target false-positive probability of the keyed cuckoo layer. Only a
  /// sizing hint (the exact set makes FPs harmless); smaller = fewer wasted
  /// exact-set probes, larger fingerprints.
  double fpp = 1.0 / 1024.0;

  /// Per-shard filter capacity in (channel-group, block) cells. 0 = size
  /// for the shard's whole group-range × blocks grid (always sufficient).
  std::size_t capacity = 0;
};

/// How an SU learns whether its transmission is licensed (DESIGN.md §3.10).
enum class QueryMode {
  /// The paper's pipeline: encrypted F under the group key, blinded Ṽ,
  /// STP conversion, RSA license. Default; every prior suite runs this.
  kPaillier,
  /// XOR multi-server PIR over the plaintext decision database: the SU
  /// splits each row fetch into random shares across non-colluding
  /// replicas and evaluates the margins locally. No modexp on the query
  /// path; the fetched positions are hidden information-theoretically.
  kPir,
};

/// XOR-PIR query path knobs (active when query_mode == kPir).
struct PirConfig {
  /// Non-colluding database replicas (ℓ-of-ℓ XOR sharing). Replica 0 is
  /// hosted inside the SDC process; the rest are standalone servers.
  std::size_t replicas = 2;
};

struct PisaConfig {
  watch::WatchConfig watch;

  std::size_t paillier_bits = 2048;  // group key and SU keys (NIST 112-bit level)
  std::size_t rsa_bits = 1024;       // license signature key
  std::size_t blind_bits = 128;      // α, β, η one-time blinding factors
  int mr_rounds = 16;                // Miller-Rabin rounds for keygen

  /// Compute lanes for the batch homomorphic pipeline (src/exec). 1 =
  /// today's sequential loops. All randomness is sampled sequentially
  /// before the parallel modexp sections, so protocol outputs are
  /// bit-identical at every setting — the knob trades wall-clock only.
  std::size_t num_threads = 1;

  /// Use the fixed-base r^n table (crypto::FastRandomizerBase) for
  /// randomizer-pool refills. Off by default: the short-exponent sampling
  /// it implies is a security trade-off (see paillier.hpp).
  bool fast_randomizers = false;

  /// Threshold-STP mode (the paper's §VII future-work direction): the group
  /// decryption exponent is 2-of-2 shared between SDC and STP, so the STP
  /// alone can no longer decrypt stored PU/SU ciphertexts — it can only
  /// open the blinded Ṽ values the SDC explicitly co-decrypts during key
  /// conversion. Costs one extra exponentiation per entry at the SDC and
  /// one extra ciphertext per entry on the SDC→STP link.
  bool threshold_stp = false;

  /// Reliable transport over the simulated network (chaos/fault testing).
  ReliabilityConfig reliability;

  /// SDC state-engine shards (DESIGN.md §3.6): the ⌈C/pack_slots⌉
  /// channel-group rows of Ñ are split into this many contiguous balanced
  /// slices, each with its own PU-column map, WAL and snapshot, folded in
  /// parallel on the shared thread pool. 1 = today's single-lane engine,
  /// byte-identical to the pre-sharding SdcServer. Values above the row
  /// count are clamped.
  std::size_t num_shards = 1;

  /// Write-ahead durability + crash recovery for the SDC state engine.
  DurabilityConfig durability;

  /// One-round denial fast path via a keyed cuckoo prefilter (§3.8).
  DenialFilterConfig denial_filter;

  /// Spectrum-query transport (§3.10): Paillier round-trip (paper) or the
  /// XOR multi-server PIR fast path. PU provisioning and licensing are
  /// unaffected; only how SUs learn grant/deny changes.
  QueryMode query_mode = QueryMode::kPaillier;

  /// Replica layout for the PIR path.
  PirConfig pir;

  /// Cross-request throughput engine (DESIGN.md §3.5). With
  /// convert_batch_max > 0 the SDC stops sending one ConvertRequestMsg per
  /// SU request: blinded Ṽ entries of concurrent requests are staged and
  /// coalesced into a single ConvertBatchMsg of at most convert_batch_max
  /// entries, so one SDC↔STP round-trip (and one parallel_for at the STP)
  /// serves many SUs. 0 = the paper's per-request round-trips, wire
  /// behaviour unchanged.
  std::size_t convert_batch_max = 0;

  /// Virtual-time linger before a non-full batch is flushed: the first
  /// staged request arms a timer and later arrivals ride along. 0 still
  /// coalesces requests delivered at the same virtual instant.
  double convert_batch_linger_us = 0.0;

  /// Virtual-time watchdog per in-flight batch: if the STP's reply never
  /// arrives (transport gave up), the batcher unblocks and flushes the next
  /// staged batch instead of wedging. 0 = derive from the reliability retry
  /// budget (or a 1 s default on the perfect bus).
  double convert_batch_watchdog_us = 0.0;

  /// Always-warm STP randomizer pools: keep this many precomputed r^n
  /// factors per registered SU, refilled in the background (per-SU ChaCha
  /// sub-stream + the shared thread pool) so the conversion hot path pays
  /// one modular multiplication per entry without any manual
  /// precompute_su_randomizers call. 0 = manual pools only (paper path).
  std::size_t stp_pool_target = 0;

  /// Slot packing (crypto::SlotCodec, DESIGN.md §3.4): fold this many
  /// channel entries into each Paillier plaintext. 1 reproduces the paper's
  /// per-entry layout byte for byte; k > 1 cuts modexps, STP decryptions
  /// and wire bytes by ~k on the PU-update, budget and SDC↔STP paths, at
  /// the cost of one (α, ε) blinding pair covering k channels of the same
  /// request (a privacy/performance dial like the §VI-A block range — see
  /// DESIGN.md §3.4 for the leakage analysis).
  std::size_t pack_slots = 1;

  /// Width of one packed slot: the eq. (14) value envelope |I| < 2^(q+9)
  /// scaled by an α of blind_bits bits, plus β, plus the balanced-digit
  /// sign bit — the guard headroom that keeps homomorphic sums and
  /// α-scaling from ever borrowing across slots.
  std::size_t slot_bits() const {
    return watch.quantizer.max_bits + 9 + blind_bits + 2;
  }

  /// Packed ciphertexts per C-entry channel column: ⌈C / pack_slots⌉.
  std::size_t channel_groups() const {
    return (watch.channels + pack_slots - 1) / pack_slots;
  }

  /// Throws std::invalid_argument when parameter combinations cannot work.
  void validate() const {
    if (paillier_bits < 64 || paillier_bits % 2 != 0)
      throw std::invalid_argument("PisaConfig: bad paillier_bits");
    if (rsa_bits + 2 > paillier_bits)
      throw std::invalid_argument(
          "PisaConfig: rsa_bits must be < paillier_bits (eq. (17) embeds the "
          "signature value in a Paillier plaintext slot)");
    // |I| <= max(N) + X*max(F) < 2^(q+9) with q = quantizer width; every
    // slot must absorb the α-scaled blind of that envelope, and the packed
    // plaintext Σ v_j·B^j must clear the centered lift (|M| < n/2), so the
    // whole slot vector needs paillier_bits − 2 bits of room. This is
    // exactly the "α-scaling overflows a slot" rejection: a config passing
    // here can never borrow across slots in eq. (14).
    if (pack_slots == 0)
      throw std::invalid_argument("PisaConfig: pack_slots must be >= 1");
    if (slot_bits() * pack_slots > paillier_bits - 2)
      throw std::invalid_argument(
          "PisaConfig: slot_bits * pack_slots exceed the plaintext space "
          "(blinding headroom + value width per slot do not fit)");
    if (blind_bits < 8)
      throw std::invalid_argument("PisaConfig: blind_bits too small to hide values");
    if (num_threads == 0)
      throw std::invalid_argument("PisaConfig: num_threads must be >= 1");
    if (num_shards == 0)
      throw std::invalid_argument("PisaConfig: num_shards must be >= 1");
    if (durability.enabled && durability.dir.empty())
      throw std::invalid_argument(
          "PisaConfig: durability.dir is required when durability is enabled");
    if (durability.enabled && durability.serial_reserve == 0)
      throw std::invalid_argument(
          "PisaConfig: durability.serial_reserve must be >= 1");
    if (convert_batch_linger_us < 0)
      throw std::invalid_argument(
          "PisaConfig: convert_batch_linger_us must be >= 0");
    if (convert_batch_watchdog_us < 0)
      throw std::invalid_argument(
          "PisaConfig: convert_batch_watchdog_us must be >= 0");
    if (query_mode == QueryMode::kPir &&
        (pir.replicas < 2 || pir.replicas > 16))
      throw std::invalid_argument(
          "PisaConfig: pir.replicas must be in [2, 16] (one server sees the "
          "query in the clear; more than 16 buys nothing but wire bytes)");
    if (denial_filter.enabled &&
        !(denial_filter.fpp > 0.0 && denial_filter.fpp < 1.0))
      throw std::invalid_argument(
          "PisaConfig: denial_filter.fpp must be in (0,1)");
    if (reliability.enabled) {
      if (reliability.timeout_us <= 0)
        throw std::invalid_argument("PisaConfig: reliability.timeout_us must be > 0");
      if (reliability.backoff < 1.0)
        throw std::invalid_argument("PisaConfig: reliability.backoff must be >= 1");
      if (reliability.dedup_window == 0)
        throw std::invalid_argument("PisaConfig: reliability.dedup_window must be >= 1");
    }
  }
};

}  // namespace pisa::core
