#include "core/messages.hpp"

#include <stdexcept>

namespace pisa::core {

void put_ciphertexts(net::Encoder& enc,
                     const std::vector<crypto::PaillierCiphertext>& cts,
                     std::size_t ct_width_bytes) {
  enc.put_u32(static_cast<std::uint32_t>(cts.size()));
  enc.put_u32(static_cast<std::uint32_t>(ct_width_bytes));
  for (const auto& ct : cts) {
    // Fixed width: no per-entry length prefix needed.
    enc.put_raw(ct.value.to_bytes_be(ct_width_bytes));
  }
}

std::vector<crypto::PaillierCiphertext> get_ciphertexts(net::Decoder& dec) {
  std::uint32_t count = dec.get_u32();
  std::uint32_t width = dec.get_u32();
  if (width == 0 || width > (1u << 20))
    throw net::DecodeError("get_ciphertexts: implausible ciphertext width");
  // Bound allocations by the actual input size before reserving anything —
  // a mutated count field must not become a giant allocation.
  if (static_cast<std::uint64_t>(count) * width > dec.remaining())
    throw net::DecodeError("get_ciphertexts: count exceeds remaining input");
  std::vector<crypto::PaillierCiphertext> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back({bn::BigUint::from_bytes_be(dec.get_raw(width))});
  }
  return out;
}

std::vector<std::uint8_t> PuUpdateMsg::encode(std::size_t ct_width) const {
  net::Encoder enc;
  enc.put_u32(pu_id);
  enc.put_u32(block);
  put_ciphertexts(enc, w_column, ct_width);
  return enc.take();
}

PuUpdateMsg PuUpdateMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  PuUpdateMsg m;
  m.pu_id = dec.get_u32();
  m.block = dec.get_u32();
  m.w_column = get_ciphertexts(dec);
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> PuDeltaMsg::encode(std::size_t ct_width) const {
  net::Encoder enc;
  enc.put_u32(pu_id);
  enc.put_u64(delta_seq);
  enc.put_u32(static_cast<std::uint32_t>(cells.size()));
  enc.put_u32(static_cast<std::uint32_t>(ct_width));
  for (const auto& cell : cells) {
    enc.put_u32(cell.group);
    enc.put_u32(cell.block);
    enc.put_raw(cell.delta.value.to_bytes_be(ct_width));
  }
  return enc.take();
}

PuDeltaMsg PuDeltaMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  PuDeltaMsg m;
  m.pu_id = dec.get_u32();
  m.delta_seq = dec.get_u64();
  if (m.delta_seq == 0)
    throw net::DecodeError("PuDeltaMsg: zero delta_seq");
  std::uint32_t count = dec.get_u32();
  std::uint32_t width = dec.get_u32();
  if (count == 0) throw net::DecodeError("PuDeltaMsg: empty delta");
  if (width == 0 || width > (1u << 20))
    throw net::DecodeError("PuDeltaMsg: implausible ciphertext width");
  // Each cell is an 8-byte coordinate header plus one fixed-width
  // ciphertext — bound the allocation by the actual input before reserving.
  if (static_cast<std::uint64_t>(count) * (8 + static_cast<std::uint64_t>(width)) >
      dec.remaining())
    throw net::DecodeError("PuDeltaMsg: cell count exceeds remaining input");
  m.cells.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Cell cell;
    cell.group = dec.get_u32();
    cell.block = dec.get_u32();
    cell.delta = {bn::BigUint::from_bytes_be(dec.get_raw(width))};
    m.cells.push_back(std::move(cell));
  }
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> SuRequestMsg::encode(std::size_t ct_width) const {
  net::Encoder enc;
  enc.put_u32(su_id);
  enc.put_u64(request_id);
  enc.put_u32(block_lo);
  enc.put_u32(block_hi);
  put_ciphertexts(enc, f, ct_width);
  return enc.take();
}

SuRequestMsg SuRequestMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  SuRequestMsg m;
  m.su_id = dec.get_u32();
  m.request_id = dec.get_u64();
  m.block_lo = dec.get_u32();
  m.block_hi = dec.get_u32();
  if (m.block_hi <= m.block_lo)
    throw net::DecodeError("SuRequestMsg: empty block range");
  m.f = get_ciphertexts(dec);
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> ConvertRequestMsg::encode(std::size_t ct_width) const {
  net::Encoder enc;
  enc.put_u64(request_id);
  enc.put_u32(su_id);
  put_ciphertexts(enc, v, ct_width);
  put_ciphertexts(enc, partials, ct_width);
  return enc.take();
}

ConvertRequestMsg ConvertRequestMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  ConvertRequestMsg m;
  m.request_id = dec.get_u64();
  m.su_id = dec.get_u32();
  m.v = get_ciphertexts(dec);
  m.partials = get_ciphertexts(dec);
  if (!m.partials.empty() && m.partials.size() != m.v.size())
    throw net::DecodeError("ConvertRequestMsg: partials/v size mismatch");
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> ConvertResponseMsg::encode(std::size_t ct_width) const {
  net::Encoder enc;
  enc.put_u64(request_id);
  put_ciphertexts(enc, x, ct_width);
  return enc.take();
}

ConvertResponseMsg ConvertResponseMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  ConvertResponseMsg m;
  m.request_id = dec.get_u64();
  m.x = get_ciphertexts(dec);
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> ConvertBatchMsg::encode(std::size_t ct_width) const {
  net::Encoder enc;
  enc.put_u64(batch_id);
  enc.put_u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& it : items) {
    enc.put_u64(it.request_id);
    enc.put_u32(it.su_id);
    put_ciphertexts(enc, it.v, ct_width);
    put_ciphertexts(enc, it.partials, ct_width);
  }
  return enc.take();
}

ConvertBatchMsg ConvertBatchMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  ConvertBatchMsg m;
  m.batch_id = dec.get_u64();
  std::uint32_t count = dec.get_u32();
  // Every item carries at least its 12-byte header, so a mutated count
  // cannot grow past the actual input.
  if (static_cast<std::uint64_t>(count) * 12 > dec.remaining())
    throw net::DecodeError("ConvertBatchMsg: item count exceeds input");
  m.items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Item it;
    it.request_id = dec.get_u64();
    it.su_id = dec.get_u32();
    it.v = get_ciphertexts(dec);
    it.partials = get_ciphertexts(dec);
    if (it.v.empty())
      throw net::DecodeError("ConvertBatchMsg: empty item");
    if (!it.partials.empty() && it.partials.size() != it.v.size())
      throw net::DecodeError("ConvertBatchMsg: partials/v size mismatch");
    m.items.push_back(std::move(it));
  }
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> ConvertBatchResponseMsg::encode(
    const std::vector<std::size_t>& ct_widths) const {
  if (ct_widths.size() != items.size())
    throw std::invalid_argument(
        "ConvertBatchResponseMsg: one ciphertext width per item required");
  net::Encoder enc;
  enc.put_u64(batch_id);
  enc.put_u32(static_cast<std::uint32_t>(items.size()));
  for (std::size_t i = 0; i < items.size(); ++i) {
    enc.put_u64(items[i].request_id);
    put_ciphertexts(enc, items[i].x, ct_widths[i]);
  }
  return enc.take();
}

ConvertBatchResponseMsg ConvertBatchResponseMsg::decode(
    const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  ConvertBatchResponseMsg m;
  m.batch_id = dec.get_u64();
  std::uint32_t count = dec.get_u32();
  if (static_cast<std::uint64_t>(count) * 8 > dec.remaining())
    throw net::DecodeError("ConvertBatchResponseMsg: item count exceeds input");
  m.items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Item it;
    it.request_id = dec.get_u64();
    it.x = get_ciphertexts(dec);
    if (it.x.empty())
      throw net::DecodeError("ConvertBatchResponseMsg: empty item");
    m.items.push_back(std::move(it));
  }
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> KeyRegisterMsg::encode() const {
  net::Encoder enc;
  enc.put_u32(su_id);
  enc.put_bytes(public_key);
  return enc.take();
}

KeyRegisterMsg KeyRegisterMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  KeyRegisterMsg m;
  m.su_id = dec.get_u32();
  m.public_key = dec.get_bytes();
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> KeyLookupMsg::encode() const {
  net::Encoder enc;
  enc.put_u32(su_id);
  return enc.take();
}

KeyLookupMsg KeyLookupMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  KeyLookupMsg m;
  m.su_id = dec.get_u32();
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> KeyLookupResponseMsg::encode() const {
  net::Encoder enc;
  enc.put_u32(su_id);
  enc.put_u8(found ? 1 : 0);
  enc.put_bytes(public_key);
  return enc.take();
}

KeyLookupResponseMsg KeyLookupResponseMsg::decode(
    const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  KeyLookupResponseMsg m;
  m.su_id = dec.get_u32();
  m.found = dec.get_u8() != 0;
  m.public_key = dec.get_bytes();
  if (m.found == m.public_key.empty())
    throw net::DecodeError("KeyLookupResponseMsg: found flag/key mismatch");
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> LicenseBody::signing_bytes() const {
  net::Encoder enc;
  enc.put_string("PISA-LICENSE-V1");
  encode_into(enc);
  return enc.take();
}

void LicenseBody::encode_into(net::Encoder& enc) const {
  enc.put_u32(su_id);
  enc.put_string(issuer);
  enc.put_u64(serial);
  enc.put_bytes(std::span<const std::uint8_t>(request_digest.data(),
                                              request_digest.size()));
}

LicenseBody LicenseBody::decode_from(net::Decoder& dec) {
  LicenseBody b;
  b.su_id = dec.get_u32();
  b.issuer = dec.get_string();
  b.serial = dec.get_u64();
  auto digest = dec.get_bytes();
  if (digest.size() != b.request_digest.size())
    throw net::DecodeError("LicenseBody: bad digest length");
  std::copy(digest.begin(), digest.end(), b.request_digest.begin());
  return b;
}

std::vector<std::uint8_t> FastDenyMsg::encode() const {
  net::Encoder enc;
  enc.put_u64(request_id);
  const std::array<std::uint8_t, kPadBytes> pad{};
  enc.put_raw(std::span<const std::uint8_t>(pad.data(), pad.size()));
  return enc.take();
}

FastDenyMsg FastDenyMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  FastDenyMsg m;
  m.request_id = dec.get_u64();
  auto pad = dec.get_raw(kPadBytes);
  for (std::uint8_t b : pad)
    if (b != 0) throw net::DecodeError("FastDenyMsg: nonzero pad byte");
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> BudgetProbeMsg::encode(std::size_t ct_width) const {
  net::Encoder enc;
  enc.put_u64(probe_id);
  put_ciphertexts(enc, v, ct_width);
  put_ciphertexts(enc, partials, ct_width);
  return enc.take();
}

BudgetProbeMsg BudgetProbeMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  BudgetProbeMsg m;
  m.probe_id = dec.get_u64();
  m.v = get_ciphertexts(dec);
  m.partials = get_ciphertexts(dec);
  if (!m.partials.empty() && m.partials.size() != m.v.size())
    throw net::DecodeError("BudgetProbeMsg: partials/v size mismatch");
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> BudgetProbeResponseMsg::encode() const {
  net::Encoder enc;
  enc.put_u64(probe_id);
  enc.put_bytes(std::span<const std::uint8_t>(signs.data(), signs.size()));
  return enc.take();
}

BudgetProbeResponseMsg BudgetProbeResponseMsg::decode(
    const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  BudgetProbeResponseMsg m;
  m.probe_id = dec.get_u64();
  auto signs = dec.get_bytes();
  m.signs.assign(signs.begin(), signs.end());
  dec.expect_done();
  return m;
}

std::vector<std::uint8_t> SuResponseMsg::encode(std::size_t ct_width) const {
  net::Encoder enc;
  enc.put_u64(request_id);
  license.encode_into(enc);
  put_ciphertexts(enc, {g}, ct_width);
  return enc.take();
}

SuResponseMsg SuResponseMsg::decode(const std::vector<std::uint8_t>& bytes) {
  net::Decoder dec{bytes};
  SuResponseMsg m;
  m.request_id = dec.get_u64();
  m.license = LicenseBody::decode_from(dec);
  auto cts = get_ciphertexts(dec);
  if (cts.size() != 1) throw net::DecodeError("SuResponseMsg: expected one ciphertext");
  m.g = std::move(cts[0]);
  dec.expect_done();
  return m;
}

}  // namespace pisa::core
