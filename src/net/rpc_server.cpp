#include "net/rpc_server.hpp"

#include <chrono>
#include <stdexcept>

#include "core/messages.hpp"
#include "crypto/key_codec.hpp"
#include "exec/thread_pool.hpp"

namespace pisa::rpc {

RpcServer::RpcServer(const core::PisaConfig& cfg, bn::RandomSource& rng,
                     net::TcpOptions opts, std::uint16_t port)
    : cfg_(cfg), rng_(rng), tcp_(opts) {
  cfg_.validate();
  // Same draw order as PisaSystem: STP keygen, then SDC keygen — an oracle
  // world seeded identically produces the same keys and entity streams.
  if (cfg_.num_threads > 1)
    exec_ = std::make_shared<exec::ThreadPool>(cfg_.num_threads);
  stp_ = std::make_unique<core::StpServer>(cfg_, rng_);
  sdc_ = std::make_unique<core::SdcServer>(cfg_, stp_->group_key(),
                                           watch::make_e_matrix(cfg_.watch),
                                           rng_);
  if (cfg_.threshold_stp) sdc_->set_threshold_share(stp_->sdc_share());
  stp_->set_thread_pool(exec_);
  sdc_->set_thread_pool(exec_);
  stp_->attach(tcp_, "stp");
  sdc_->attach(tcp_, "sdc", "stp");
  // §3.10: the SDC attach above registered replica 0; the standalone
  // replicas live behind the same listener as their own endpoints.
  if (cfg_.query_mode == core::QueryMode::kPir) {
    auto e = watch::make_e_matrix(cfg_.watch);
    for (std::size_t i = 1; i < cfg_.pir.replicas; ++i) {
      auto srv = std::make_unique<pir::PirServer>(e, cfg_.pack_slots,
                                                  pir::PirDurability{});
      srv->set_thread_pool(exec_);
      srv->attach(tcp_, pir::replica_name(i));
      pir_extras_.push_back(std::move(srv));
    }
  }
  tcp_.listen(port);
}

pir::PirServer* RpcServer::pir_replica(std::size_t index) {
  if (cfg_.query_mode != core::QueryMode::kPir || index >= cfg_.pir.replicas)
    return nullptr;
  if (index == 0) return sdc_ ? sdc_->pir_server() : nullptr;
  return pir_extras_.at(index - 1).get();
}

void RpcServer::crash_pir_replica(std::size_t index) {
  if (index == 0 || index >= cfg_.pir.replicas)
    throw std::out_of_range(
        "RpcServer: crash_pir_replica needs a standalone replica index");
  auto& slot = pir_extras_.at(index - 1);
  if (!slot) return;
  tcp_.remove_endpoint(pir::replica_name(index));
  slot.reset();
}

void RpcServer::crash_sdc() {
  if (!sdc_) return;
  tcp_.remove_endpoint("sdc");
  if (cfg_.query_mode == core::QueryMode::kPir)
    tcp_.remove_endpoint(pir::replica_name(0));
  sdc_.reset();
}

core::SdcServer& RpcServer::restart_sdc() {
  if (sdc_) return *sdc_;
  sdc_ = std::make_unique<core::SdcServer>(cfg_, stp_->group_key(),
                                           watch::make_e_matrix(cfg_.watch),
                                           rng_);
  if (cfg_.threshold_stp) sdc_->set_threshold_share(stp_->sdc_share());
  sdc_->set_thread_pool(exec_);
  sdc_->attach(tcp_, "sdc", "stp");
  return *sdc_;
}

RpcClient::RpcClient(const core::PisaConfig& cfg,
                     crypto::PaillierPublicKey group_pk, std::string host,
                     std::uint16_t port, bn::RandomSource& rng,
                     net::TcpOptions opts)
    : cfg_(cfg), group_pk_(std::move(group_pk)), host_(std::move(host)),
      port_(port), rng_(rng), tcp_(opts),
      e_matrix_(watch::make_e_matrix(cfg.watch)) {
  conn_id_ = tcp_.connect(host_, port_, route_names());
}

std::vector<std::string> RpcClient::route_names() const {
  std::vector<std::string> names{"sdc", "stp"};
  if (cfg_.query_mode == core::QueryMode::kPir)
    for (std::size_t i = 0; i < cfg_.pir.replicas; ++i)
      names.push_back(pir::replica_name(i));
  return names;
}

core::SuClient& RpcClient::add_su(std::uint32_t su_id, std::size_t precompute) {
  if (sus_.contains(su_id))
    throw std::invalid_argument("RpcClient: duplicate SU id");
  auto client =
      std::make_unique<core::SuClient>(su_id, cfg_, group_pk_, rng_);
  tcp_.register_endpoint(su_name(su_id), [this](const net::Message& msg) {
    if (msg.type == pir::kMsgPirReply) {
      auto reply = pir::PirReplyMsg::decode(msg.payload);
      auto request_id = reply.request_id;
      bool complete;
      {
        std::lock_guard<std::mutex> lk(rmu_);
        auto& slot = pir_replies_[request_id];
        slot.push_back(std::move(reply));
        complete = slot.size() >= cfg_.pir.replicas;
      }
      if (complete && on_response_) on_response_(request_id);
      rcv_.notify_all();
      return;
    }
    if (msg.type == core::kMsgFastDeny) {
      // §3.8 one-round denial: record the rid and wake waiters; decode()
      // validates the fixed 32-byte shape (leakage discipline).
      auto deny = core::FastDenyMsg::decode(msg.payload);
      {
        std::lock_guard<std::mutex> lk(rmu_);
        fast_denied_.insert(deny.request_id);
      }
      if (on_response_) on_response_(deny.request_id);
      rcv_.notify_all();
      return;
    }
    if (msg.type != core::kMsgSuResponse)
      throw std::runtime_error("SU endpoint: unexpected message " + msg.type);
    auto resp = core::SuResponseMsg::decode(msg.payload);
    auto request_id = resp.request_id;
    {
      std::lock_guard<std::mutex> lk(rmu_);
      responses_.insert_or_assign(request_id, std::move(resp));
    }
    // Probe before notify: a waiter that wakes for this id observes the
    // load generator's completion timestamp already recorded.
    if (on_response_) on_response_(request_id);
    rcv_.notify_all();
  });
  core::KeyRegisterMsg reg{su_id, crypto::serialize(client->public_key())};
  tcp_.send({su_name(su_id), "stp", core::kMsgKeyRegister, reg.encode()});
  if (precompute > 0) client->precompute_randomizers(precompute);
  if (cfg_.query_mode == core::QueryMode::kPir)
    pir_clients_.emplace(
        su_id, std::make_unique<pir::PirClient>(
                   su_id, cfg_.pir.replicas,
                   cfg_.watch.make_area().num_blocks(), rng_));
  auto& ref = *client;
  sus_.emplace(su_id, std::move(client));
  return ref;
}

core::PuClient& RpcClient::add_pu(const watch::PuSite& site) {
  if (pus_.contains(site.pu_id))
    throw std::invalid_argument("RpcClient: duplicate PU id");
  auto client = std::make_unique<core::PuClient>(
      site, cfg_, group_pk_, e_matrix_, rng_);
  auto& ref = *client;
  pus_.emplace(site.pu_id, std::move(client));
  return ref;
}

core::SuClient& RpcClient::su(std::uint32_t su_id) {
  auto it = sus_.find(su_id);
  if (it == sus_.end()) throw std::out_of_range("RpcClient: unknown SU");
  return *it->second;
}

core::PuClient& RpcClient::pu(std::uint32_t pu_id) {
  auto it = pus_.find(pu_id);
  if (it == pus_.end()) throw std::out_of_range("RpcClient: unknown PU");
  return *it->second;
}

void RpcClient::send_pir_updates(std::uint32_t pu_id,
                                 const watch::PuTuning& tuning) {
  if (cfg_.query_mode != core::QueryMode::kPir) return;
  auto bytes = pu(pu_id).make_pir_update(tuning).encode();
  for (std::size_t i = 0; i < cfg_.pir.replicas; ++i) {
    net::Message m;
    m.from = "pu_" + std::to_string(pu_id);
    m.to = pir::replica_name(i);
    m.type = pir::kMsgPirUpdate;
    m.payload = bytes;
    m.net_seq = next_pin_seq_++;
    tcp_.send(std::move(m));
  }
}

RpcClient::PuUpdateHandle RpcClient::pu_update(std::uint32_t pu_id,
                                               const watch::PuTuning& tuning) {
  auto update = pu(pu_id).make_update(tuning);
  PuUpdateHandle h;
  h.pu_id = pu_id;
  h.net_seq = next_pin_seq_++;
  h.bytes = update.encode(group_pk_.ciphertext_bytes());
  resend_pu_update(h);
  send_pir_updates(pu_id, tuning);
  return h;
}

void RpcClient::resend_pu_update(const PuUpdateHandle& handle) {
  net::Message m;
  m.from = "pu_" + std::to_string(handle.pu_id);
  m.to = "sdc";
  m.type = core::kMsgPuUpdate;
  m.payload = handle.bytes;
  m.net_seq = handle.net_seq;  // pinned: duplicates dedup at the SDC
  tcp_.send(std::move(m));
}

std::optional<RpcClient::PuUpdateHandle> RpcClient::pu_delta(
    std::uint32_t pu_id, const watch::PuTuning& tuning) {
  auto delta = pu(pu_id).make_delta(tuning);
  if (!delta) return std::nullopt;
  PuUpdateHandle h;
  h.pu_id = pu_id;
  h.net_seq = next_pin_seq_++;
  h.bytes = delta->encode(group_pk_.ciphertext_bytes());
  resend_pu_delta(h);
  send_pir_updates(pu_id, tuning);
  return h;
}

void RpcClient::resend_pu_delta(const PuUpdateHandle& handle) {
  net::Message m;
  m.from = "pu_" + std::to_string(handle.pu_id);
  m.to = "sdc";
  m.type = core::kMsgPuDelta;
  m.payload = handle.bytes;
  // Pinned seq dedups transport-level duplicates; the engine's per-PU
  // delta_seq additionally folds each delta exactly once even when a crash
  // tore a partial application (shards re-check their own applied seq).
  m.net_seq = handle.net_seq;
  tcp_.send(std::move(m));
}

RpcClient::PreparedRequest RpcClient::prepare_request(
    std::uint32_t su_id, const watch::QMatrix& f,
    std::optional<std::pair<std::uint32_t, std::uint32_t>> range,
    core::PrepMode mode) {
  PreparedRequest p;
  p.request_id = next_request_id_++;
  p.su_id = su_id;
  std::uint32_t lo = range ? range->first : 0;
  std::uint32_t hi =
      range ? range->second : static_cast<std::uint32_t>(f.blocks());
  auto msg = su(su_id).prepare_request(f, p.request_id, lo, hi, mode);
  p.bytes = msg.encode(group_pk_.ciphertext_bytes());
  return p;
}

void RpcClient::submit(const PreparedRequest& req) {
  tcp_.send({su_name(req.su_id), "sdc", core::kMsgSuRequest, req.bytes});
}

bool RpcClient::wait_response(std::uint64_t request_id,
                              core::SuResponseMsg* out, double timeout_ms,
                              bool* fast_denied) {
  if (fast_denied != nullptr) *fast_denied = false;
  std::unique_lock<std::mutex> lk(rmu_);
  bool ok = rcv_.wait_for(
      lk, std::chrono::microseconds(static_cast<std::int64_t>(timeout_ms * 1e3)),
      [&] {
        return responses_.contains(request_id) ||
               fast_denied_.contains(request_id);
      });
  if (!ok) return false;
  if (fast_denied_.erase(request_id) != 0) {
    if (fast_denied != nullptr) *fast_denied = true;
    return true;
  }
  auto it = responses_.find(request_id);
  if (out != nullptr) *out = std::move(it->second);
  responses_.erase(it);
  return true;
}

std::size_t RpcClient::responses_pending() const {
  std::lock_guard<std::mutex> lk(rmu_);
  return responses_.size();
}

RpcClient::PirOutcome RpcClient::pir_request(std::uint32_t su_id,
                                             const watch::QMatrix& f,
                                             std::uint32_t block_lo,
                                             std::uint32_t block_hi,
                                             double timeout_ms) {
  auto it = pir_clients_.find(su_id);
  if (it == pir_clients_.end())
    throw std::out_of_range("RpcClient: unknown SU");
  auto& client = *it->second;

  std::uint64_t rid = next_request_id_++;
  auto queries = client.make_queries(rid, block_lo, block_hi);

  PirOutcome out;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto bytes = queries[i].encode();
    out.query_bytes += bytes.size();
    tcp_.send({su_name(su_id), pir::replica_name(i), pir::kMsgPirQuery,
               std::move(bytes)});
  }

  std::vector<pir::PirReplyMsg> got;
  {
    std::unique_lock<std::mutex> lk(rmu_);
    bool ok = rcv_.wait_for(
        lk,
        std::chrono::microseconds(static_cast<std::int64_t>(timeout_ms * 1e3)),
        [&] {
          auto slot = pir_replies_.find(rid);
          return slot != pir_replies_.end() &&
                 slot->second.size() >= cfg_.pir.replicas;
        });
    auto slot = pir_replies_.find(rid);
    if (slot != pir_replies_.end()) {
      got = std::move(slot->second);
      pir_replies_.erase(slot);
    }
    if (!ok) {
      out.failure = "timed out with " + std::to_string(got.size()) + "/" +
                    std::to_string(cfg_.pir.replicas) + " PIR replies";
      return out;
    }
  }
  for (const auto& r : got) out.reply_bytes += r.encode().size();

  try {
    auto raw = client.reconstruct(got);
    std::vector<std::vector<std::int64_t>> rows;
    rows.reserve(raw.size());
    for (const auto& r : raw)
      rows.push_back(pir::decode_budget_row(r, cfg_.watch.channels));
    auto decision = pir::evaluate_rows(cfg_.watch, f, block_lo, rows);
    out.completed = true;
    out.granted = decision.granted;
  } catch (const std::runtime_error& e) {
    out.failure = e.what();
  }
  return out;
}

void RpcClient::reconnect() {
  tcp_.close_connection(conn_id_);
  conn_id_ = tcp_.connect(host_, port_, route_names());
}

}  // namespace pisa::rpc
