// In-process simulated network.
//
// PISA's four parties (PUs, SUs, the SDC and the STP) exchange messages
// over this bus. It is an event-driven simulator: messages carry a virtual
// arrival time computed from a configurable base latency plus a
// size-proportional transfer term, delivery is in arrival-time order, and
// handlers may send further messages (which are scheduled after the current
// virtual time). The bus also keeps a per-endpoint audit trail — the
// privacy-accounting tests use it to prove which party observed which
// message types and sizes, matching the paper's Figure 6 byte counts.
//
// Faults: an optional seeded fault layer (fault.hpp) can drop, duplicate,
// corrupt, reorder or delay messages per link. Every decision comes from a
// ChaCha20 stream, so a chaos schedule replays exactly from its seed. The
// bus itself stays best-effort; reliable_channel.hpp builds acknowledged
// delivery on top.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "net/fault.hpp"

namespace pisa::crypto {
class ChaChaRng;
}

namespace pisa::net {

struct Message {
  std::string from;
  std::string to;
  std::string type;  // protocol message discriminator, e.g. "pu_update"
  std::vector<std::uint8_t> payload;
  /// Reliable-transport sequence number; 0 for raw (unframed) delivery.
  /// Set by ReliableTransport before the application handler runs so
  /// handlers can key idempotency caches on (from, net_seq).
  std::uint64_t net_seq = 0;
};

struct DeliveryRecord {
  std::string from;
  std::string type;
  std::size_t bytes = 0;
  double arrival_us = 0;
};

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  bool operator==(const TrafficStats&) const = default;
};

/// A send() that could not be delivered (e.g. the recipient endpoint does
/// not exist — a crashed or never-provisioned party). Recorded instead of
/// thrown so chaos runs can exercise endpoint loss without aborting.
struct DeliveryFailure {
  std::string from;
  std::string to;
  std::string type;
  std::size_t bytes = 0;
  std::string reason;
};

/// Minimal message-passing interface the protocol entities program against.
/// Implemented by SimulatedNetwork (raw, best-effort) and ReliableTransport
/// (sequence-numbered, acknowledged delivery with retry/backoff/dedup).
class Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  /// Register a named endpoint. Throws if the name is taken.
  virtual void register_endpoint(const std::string& name, Handler handler) = 0;

  /// Remove a named endpoint (a crashed party). Idempotent: removing an
  /// unknown name is a no-op. Messages already in flight to the name are
  /// recorded as delivery failures when they arrive, and the name can be
  /// re-registered afterwards (the restarted party).
  virtual void remove_endpoint(const std::string& name) = 0;

  /// Submit a message for (possibly unreliable) delivery.
  virtual void send(Message m) = 0;

  /// Run `fn` at virtual time now + delay_us (application timers — the SDC's
  /// conversion batcher uses this for its linger/watchdog deadlines).
  virtual void schedule_after(double delay_us, std::function<void()> fn) = 0;
};

class SimulatedNetwork : public Transport {
 public:
  /// `base_latency_us` per message plus payload_bytes / `bandwidth_bytes_per_us`.
  explicit SimulatedNetwork(double base_latency_us = 500.0,
                            double bandwidth_bytes_per_us = 125.0 /* 1 Gb/s */);
  ~SimulatedNetwork() override;

  void register_endpoint(const std::string& name, Handler handler) override;

  /// Drop the endpoint; its audit log is kept (the crashed party's receive
  /// history is evidence the privacy tests still want to inspect).
  void remove_endpoint(const std::string& name) override;

  bool has_endpoint(const std::string& name) const;

  /// Schedule a message. Sends to unknown recipients are recorded as
  /// delivery failures (see delivery_failures()), not thrown.
  void send(Message m) override;

  /// Run `fn` at virtual time now_us() + delay_us. Timer events share the
  /// event queue with messages but do not count as deliveries.
  void schedule_after(double delay_us, std::function<void()> fn) override;

  /// Deliver or fire the earliest pending event; false if none pending.
  bool deliver_one();

  /// Deliver until quiescent; returns the number of *messages* delivered
  /// (timer events are processed but not counted).
  std::size_t run();

  double now_us() const { return now_us_; }
  std::size_t pending() const { return queue_.size(); }

  // --- fault injection -----------------------------------------------------
  /// (Re)key the ChaCha20 fault stream. Faults are only injected once a
  /// seed is set and a plan with any() == true applies to the link.
  void set_fault_seed(std::uint64_t seed);

  /// Plan applied to links without a specific per-link plan.
  void set_default_fault_plan(const FaultPlan& plan);

  /// Plan for one directed (from, to) link; overrides the default.
  void set_fault_plan(const std::string& from, const std::string& to,
                      const FaultPlan& plan);

  void clear_fault_plans();

  const FaultStats& fault_stats() const { return fault_stats_; }
  FaultStats link_fault_stats(const std::string& from,
                              const std::string& to) const;
  const std::vector<DeliveryFailure>& delivery_failures() const {
    return failures_;
  }

  /// Total traffic between a (from, to) pair, and globally. Every delivered
  /// copy counts, so retransmissions and injected duplicates are visible in
  /// the Figure 6 byte accounting.
  TrafficStats stats(const std::string& from, const std::string& to) const;
  TrafficStats total_stats() const;

  /// Everything a given endpoint has received, in delivery order.
  const std::vector<DeliveryRecord>& audit_log(const std::string& endpoint) const;

 private:
  struct Pending {
    double arrival_us;
    std::uint64_t seq;  // FIFO tiebreak
    Message msg;
    std::function<void()> timer;  // non-null = timer event, msg unused
    bool operator>(const Pending& o) const {
      if (arrival_us != o.arrival_us) return arrival_us > o.arrival_us;
      return seq > o.seq;
    }
  };

  /// Process one event: -1 none pending, 0 timer fired, 1 message delivered.
  int step();

  const FaultPlan* plan_for(const std::string& from, const std::string& to) const;
  double roll();  // uniform [0, 1) from the fault stream
  std::uint64_t roll_u64();

  double base_latency_us_;
  double bandwidth_bytes_per_us_;
  double now_us_ = 0;
  std::uint64_t next_seq_ = 0;

  std::map<std::string, Handler> endpoints_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::map<std::pair<std::string, std::string>, TrafficStats> traffic_;
  TrafficStats total_;
  std::map<std::string, std::vector<DeliveryRecord>> audit_;

  std::unique_ptr<crypto::ChaChaRng> fault_rng_;
  std::unique_ptr<FaultPlan> default_plan_;
  std::map<std::pair<std::string, std::string>, FaultPlan> link_plans_;
  FaultStats fault_stats_;
  std::map<std::pair<std::string, std::string>, FaultStats> link_fault_;
  std::vector<DeliveryFailure> failures_;
};

}  // namespace pisa::net
