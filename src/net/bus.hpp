// In-process simulated network.
//
// PISA's four parties (PUs, SUs, the SDC and the STP) exchange messages
// over this bus. It is an event-driven simulator: messages carry a virtual
// arrival time computed from a configurable base latency plus a
// size-proportional transfer term, delivery is in arrival-time order, and
// handlers may send further messages (which are scheduled after the current
// virtual time). The bus also keeps a per-endpoint audit trail — the
// privacy-accounting tests use it to prove which party observed which
// message types and sizes, matching the paper's Figure 6 byte counts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

namespace pisa::net {

struct Message {
  std::string from;
  std::string to;
  std::string type;  // protocol message discriminator, e.g. "pu_update"
  std::vector<std::uint8_t> payload;
};

struct DeliveryRecord {
  std::string from;
  std::string type;
  std::size_t bytes = 0;
  double arrival_us = 0;
};

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class SimulatedNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  /// `base_latency_us` per message plus payload_bytes / `bandwidth_bytes_per_us`.
  explicit SimulatedNetwork(double base_latency_us = 500.0,
                            double bandwidth_bytes_per_us = 125.0 /* 1 Gb/s */);

  /// Register a named endpoint. Throws if the name is taken.
  void register_endpoint(const std::string& name, Handler handler);

  bool has_endpoint(const std::string& name) const;

  /// Schedule a message. Throws std::out_of_range for unknown recipients.
  void send(Message m);

  /// Deliver the earliest pending message; false if none pending.
  bool deliver_one();

  /// Deliver until quiescent; returns the number of messages delivered.
  std::size_t run();

  double now_us() const { return now_us_; }
  std::size_t pending() const { return queue_.size(); }

  /// Total traffic between a (from, to) pair, and globally.
  TrafficStats stats(const std::string& from, const std::string& to) const;
  TrafficStats total_stats() const;

  /// Everything a given endpoint has received, in delivery order.
  const std::vector<DeliveryRecord>& audit_log(const std::string& endpoint) const;

 private:
  struct Pending {
    double arrival_us;
    std::uint64_t seq;  // FIFO tiebreak
    Message msg;
    bool operator>(const Pending& o) const {
      if (arrival_us != o.arrival_us) return arrival_us > o.arrival_us;
      return seq > o.seq;
    }
  };

  double base_latency_us_;
  double bandwidth_bytes_per_us_;
  double now_us_ = 0;
  std::uint64_t next_seq_ = 0;

  std::map<std::string, Handler> endpoints_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::map<std::pair<std::string, std::string>, TrafficStats> traffic_;
  TrafficStats total_;
  std::map<std::string, std::vector<DeliveryRecord>> audit_;
};

}  // namespace pisa::net
