#include "net/codec.hpp"

#include <array>
#include <cstring>

namespace pisa::net {

void Encoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(bits);
}

void Encoder::put_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > UINT32_MAX) throw std::length_error("Encoder: bytes too long");
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Encoder::put_raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Encoder::put_string(std::string_view s) {
  put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Encoder::put_biguint(const bn::BigUint& v) {
  auto bytes = v.to_bytes_be();
  put_bytes(bytes);
}

std::span<const std::uint8_t> Decoder::need(std::size_t n) {
  if (remaining() < n) throw DecodeError("Decoder: truncated input");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t Decoder::get_u8() { return need(1)[0]; }

std::uint32_t Decoder::get_u32() {
  auto b = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t Decoder::get_u64() {
  auto b = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

double Decoder::get_f64() {
  std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::vector<std::uint8_t> Decoder::get_bytes() {
  std::uint32_t len = get_u32();
  auto b = need(len);
  return {b.begin(), b.end()};
}

std::span<const std::uint8_t> Decoder::get_raw(std::size_t n) { return need(n); }

std::string Decoder::get_string() {
  std::uint32_t len = get_u32();
  auto b = need(len);
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

bn::BigUint Decoder::get_biguint() {
  auto bytes = get_bytes();
  return bn::BigUint::from_bytes_be(bytes);
}

void Decoder::expect_done() const {
  if (!done()) throw DecodeError("Decoder: trailing bytes");
}

namespace {

constexpr std::array<std::uint32_t, 256> kCrcTable = [] {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) c = kCrcTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void seal_frame(std::vector<std::uint8_t>& frame) {
  std::uint32_t c = crc32(frame);
  for (int i = 0; i < 4; ++i)
    frame.push_back(static_cast<std::uint8_t>(c >> (8 * i)));
}

bool open_frame(std::vector<std::uint8_t>& frame) {
  if (frame.size() < 4) return false;
  std::size_t body = frame.size() - 4;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i)
    stored |= static_cast<std::uint32_t>(frame[body + static_cast<std::size_t>(i)])
              << (8 * i);
  if (crc32(std::span<const std::uint8_t>(frame.data(), body)) != stored)
    return false;
  frame.resize(body);
  return true;
}

}  // namespace pisa::net
