// TCP driver for the §3.9 scenario engine.
//
// Adapts an RpcServer + RpcClient pair to core::ScenarioDriver, so the same
// seeded tick schedule that drives the simulated-network PisaSystem drives a
// real socket deployment. Determinism note: client→server frames are
// asynchronous — pu_send returns once the frame is queued, while the
// server's dispatch thread folds it (and runs the §3.8 re-probe round the
// fold enqueues on the same serial lane) at its own pace. To match the
// sim's drained-network semantics the driver counts every update it puts on
// the wire, and before any state read or request it (a) polls the SDC's
// fold counters until that many arrived, then (b) quiesces the server's
// dispatch lane so the probe rounds rooted in those folds have finished.
// With that barrier, decisions and filter state are as deterministic here
// as under the sim's network drain.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario_engine.hpp"
#include "net/rpc_server.hpp"
#include "radio/pathloss.hpp"
#include "watch/matrices.hpp"

namespace pisa::rpc {

class TcpScenarioDriver final : public core::ScenarioDriver {
 public:
  /// `sites` must be the receiver registrations the deployment was built
  /// with (the F matrix models interference at the *registered* receiver
  /// locations, exactly like PisaSystem::build_f). `model` must outlive the
  /// driver. Every SU/PU the engine touches must already be added to
  /// `client`.
  TcpScenarioDriver(RpcServer& server, RpcClient& client,
                    const core::PisaConfig& cfg,
                    std::vector<watch::PuSite> sites,
                    const radio::PathLossModel& model,
                    double timeout_ms = 60'000.0);

  void pu_move(std::uint32_t pu_id, std::uint32_t block) override;
  bool pu_send(std::uint32_t pu_id, const watch::PuTuning& tuning,
               bool use_delta) override;
  RequestResult su_request(const watch::SuRequest& request,
                           std::uint32_t range_pad) override;
  void crash_sdc() override;
  void restart_sdc() override;
  bool sdc_running() override;
  std::vector<std::uint8_t> exhausted_state_bytes() override;
  std::uint64_t wal_bytes() override;
  std::uint64_t delta_cells_folded() override;

 private:
  /// The determinism barrier: wait until the SDC has folded every update
  /// this driver sent since the last (re)boot, then quiesce the server's
  /// dispatch lane so the re-probe rounds those folds enqueued are done.
  /// Throws on timeout. No-op while the SDC is down.
  void sync_server();

  RpcServer& server_;
  RpcClient& client_;
  core::PisaConfig cfg_;
  std::vector<watch::PuSite> sites_;
  const radio::PathLossModel& model_;
  double d_c_m_;
  double timeout_ms_;
  std::uint64_t expected_updates_ = 0;  // sent since the current SDC boot
};

}  // namespace pisa::rpc
