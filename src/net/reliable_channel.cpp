#include "net/reliable_channel.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "net/codec.hpp"

namespace pisa::net {

bool DedupWindow::first_time(const std::string& sender, std::uint64_t seq) {
  if (seq == 0) return true;  // raw delivery, no transport framing
  auto [it, inserted] = seen_.emplace(sender, seq);
  if (!inserted) return false;
  order_.push_back(*it);
  while (order_.size() > cap_) {
    seen_.erase(order_.front());
    order_.pop_front();
  }
  return true;
}

ReliableTransport::ReliableTransport(SimulatedNetwork& net, ReliablePolicy policy)
    : net_(net), policy_(policy) {
  if (policy_.timeout_us <= 0 || policy_.backoff < 1.0 ||
      policy_.dedup_window == 0)
    throw std::invalid_argument("ReliableTransport: bad policy");
}

void ReliableTransport::register_endpoint(const std::string& name,
                                          Handler handler) {
  if (!handler)
    throw std::invalid_argument("ReliableTransport: null handler");
  if (endpoints_.contains(name))
    throw std::invalid_argument("ReliableTransport: duplicate endpoint " + name);
  net_.register_endpoint(name,
                         [this, name](const Message& raw) { on_frame(name, raw); });
  endpoints_.emplace(name, Endpoint{std::move(handler), {}, {}});
}

void ReliableTransport::remove_endpoint(const std::string& name) {
  net_.remove_endpoint(name);
  endpoints_.erase(name);
  // A crashed process takes its connections with it: every peer drops its
  // outstanding frames to the name (armed retransmission timers then find
  // nothing and fall silent) and forgets its sequence history — otherwise a
  // restarted incarnation, numbering again from seq 1, would be suppressed
  // as a replay of its predecessor. Stale frames of the old incarnation
  // that surface after a restart fall through to the application-level
  // DedupWindow, the second line of defence.
  for (auto& [peer, ep] : endpoints_) {
    ep.tx.erase(name);
    ep.rx.erase(name);
  }
}

void ReliableTransport::send(Message m) {
  auto it = endpoints_.find(m.from);
  if (it == endpoints_.end())
    throw std::logic_error("ReliableTransport: unregistered sender " + m.from);
  auto& ps = it->second.tx[m.to];
  std::uint64_t seq = next_seq_++;

  Encoder enc;
  enc.put_u8(kData);
  enc.put_u64(seq);
  enc.put_bytes(m.payload);
  auto frame = enc.take();
  seal_frame(frame);

  auto [oit, inserted] =
      ps.outstanding.emplace(seq, Outstanding{m.type, std::move(frame), 0});
  (void)inserted;
  ++stats_.data_sent;
  // The queue gets its own copy: injected corruption mutates the queued
  // frame, and retransmissions must start from the pristine bytes.
  net_.send({m.from, m.to, m.type, oit->second.frame, seq});
  arm_timer(m.from, m.to, seq);
}

void ReliableTransport::schedule_after(double delay_us,
                                       std::function<void()> fn) {
  net_.schedule_after(delay_us, std::move(fn));
}

void ReliableTransport::arm_timer(const std::string& from, const std::string& to,
                                  std::uint64_t seq) {
  auto& o = endpoints_.at(from).tx.at(to).outstanding.at(seq);
  double delay =
      policy_.timeout_us *
      std::pow(policy_.backoff, static_cast<double>(o.retransmits));
  net_.schedule_after(delay, [this, from, to, seq] { on_timeout(from, to, seq); });
}

void ReliableTransport::on_timeout(const std::string& from, const std::string& to,
                                   std::uint64_t seq) {
  retransmit(from, to, seq, /*exhausted_gives_up=*/true);
}

void ReliableTransport::retransmit(const std::string& from, const std::string& to,
                                   std::uint64_t seq, bool exhausted_gives_up) {
  auto ei = endpoints_.find(from);
  if (ei == endpoints_.end()) return;
  auto ti = ei->second.tx.find(to);
  if (ti == ei->second.tx.end()) return;
  auto oi = ti->second.outstanding.find(seq);
  if (oi == ti->second.outstanding.end()) return;  // already acknowledged

  Outstanding& o = oi->second;
  if (o.retransmits >= policy_.max_retries) {
    if (!exhausted_gives_up) return;  // a pending timer will give up
    GiveUp g{from, to, o.type, seq, o.retransmits + 1};
    ti->second.outstanding.erase(oi);
    ++stats_.gave_up;
    failures_.push_back(g);
    if (on_failure_) on_failure_(g);
    return;
  }
  ++o.retransmits;
  ++stats_.retransmits;
  net_.send({from, to, o.type, o.frame, seq});
  if (exhausted_gives_up) arm_timer(from, to, seq);
}

void ReliableTransport::send_control(Kind kind, const std::string& from,
                                     const std::string& to, std::uint64_t seq) {
  Encoder enc;
  enc.put_u8(kind);
  enc.put_u64(seq);
  auto frame = enc.take();
  seal_frame(frame);
  if (kind == kAck)
    ++stats_.acks_sent;
  else
    ++stats_.nacks_sent;
  net_.send({from, to, kind == kAck ? kMsgAck : kMsgNack, std::move(frame), seq});
}

void ReliableTransport::on_frame(const std::string& self, const Message& raw) {
  auto& ep = endpoints_.at(self);
  auto frame = raw.payload;
  if (!open_frame(frame)) {
    ++stats_.corrupt_rejected;
    // Best-effort header recovery for the NACK — the seq bytes may be
    // corrupt themselves, in which case the sender finds nothing
    // outstanding and ignores it; the retransmission timer still covers.
    std::uint64_t seq = 0;
    if (raw.payload.size() >= 9) {
      Decoder header({raw.payload.data(), 9});
      header.get_u8();
      seq = header.get_u64();
    }
    send_control(kNack, self, raw.from, seq);
    return;
  }

  // Parse fully before side effects so a malformed-but-CRC-valid frame
  // (hostile input) is dropped without touching handler state.
  std::optional<Message> deliver;
  std::uint64_t seq = 0;
  std::uint8_t kind = 0;
  try {
    Decoder dec(frame);
    kind = dec.get_u8();
    seq = dec.get_u64();
    if (kind == kData) {
      auto payload = dec.get_bytes();
      dec.expect_done();
      deliver = Message{raw.from, raw.to, raw.type, std::move(payload), seq};
    } else if (kind == kAck || kind == kNack) {
      dec.expect_done();
    } else {
      throw DecodeError("ReliableTransport: unknown frame kind");
    }
  } catch (const DecodeError&) {
    ++stats_.corrupt_rejected;
    return;
  }

  if (kind == kAck) {
    auto ti = ep.tx.find(raw.from);
    if (ti != ep.tx.end() && ti->second.outstanding.erase(seq) > 0)
      ++stats_.acks_received;
    return;
  }
  if (kind == kNack) {
    retransmit(self, raw.from, seq, /*exhausted_gives_up=*/false);
    return;
  }

  // DATA: always re-ACK — the previous ACK may have been lost.
  send_control(kAck, self, raw.from, seq);
  auto& pr = ep.rx[raw.from];
  if (pr.seen.contains(seq)) {
    ++stats_.duplicates_suppressed;
    return;
  }
  pr.seen.insert(seq);
  pr.order.push_back(seq);
  while (pr.order.size() > policy_.dedup_window) {
    pr.seen.erase(pr.order.front());
    pr.order.pop_front();
  }
  ++stats_.delivered;
  ep.app(*deliver);
}

}  // namespace pisa::net
