// Wire framing for the real TCP transport.
//
// A TCP connection carries a stream of length-prefixed records, each sealed
// with the same CRC-32 trailer (codec seal_frame/open_frame) the simulated
// network's reliable channel uses, so one checksum discipline covers both
// stacks:
//
//   u32 record_len (LE) | sealed body (record_len bytes)
//   sealed body := Encoder{ string from | string to | string type |
//                           u64 seq | bytes payload } + CRC-32 trailer
//
// `seq` is the transport-global send counter (ReliableTransport numbering
// discipline): every (sender, seq) pair is unique for a transport's
// lifetime, so application-level DedupWindows keep exactly-once semantics
// when a reconnecting client re-sends a frame it cannot prove was
// delivered. A caller may pin the seq of a re-send for exactly that reason.
//
// FrameReader is the incremental stream parser: bytes arrive in whatever
// chunks the kernel hands us (split or coalesced arbitrarily), and the
// reader yields exactly the records a one-shot parse of the concatenated
// stream would — the frame_fuzz differential test pins that equivalence
// against a reference built directly on open_frame + Decoder. A malformed
// record (oversized length, bad checksum, trailing garbage in the body)
// poisons the stream permanently: on TCP there is no way to resynchronise
// framing after a bad length prefix, so the transport drops the connection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/bus.hpp"

namespace pisa::net {

/// Hard ceiling a framer enforces on record_len before buffering a body.
/// Large enough for the paper's 29 MB SU request at full C×B scale.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// Serialize a message (with its assigned transport seq) into one wire
/// record: length prefix + sealed body.
std::vector<std::uint8_t> encode_frame(const Message& m);

/// Parse one complete sealed body (length prefix already stripped, CRC
/// trailer still attached). Throws DecodeError on checksum or layout
/// failure. This is the arbiter both the incremental reader and the
/// differential fuzz reference call.
Message decode_frame_body(std::span<const std::uint8_t> body);

class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Why a stream was rejected (sticky once set).
  enum class Error : std::uint8_t {
    kNone = 0,
    kOversize,   ///< length prefix exceeds max_frame_bytes
    kBadFrame,   ///< CRC mismatch or malformed body
  };

  enum class Poll : std::uint8_t {
    kNeedMore,  ///< no complete record buffered
    kFrame,     ///< one record parsed into *out
    kReject,    ///< stream poisoned (error() says why); all later polls reject
  };

  /// Append raw stream bytes. Cheap; parsing happens in poll().
  void feed(std::span<const std::uint8_t> bytes);

  /// Extract the next record if a complete one is buffered.
  Poll poll(Message* out);

  Error error() const { return error_; }

  /// Bytes buffered but not yet consumed by a complete record — nonzero at
  /// connection EOF means the peer died mid-frame (a truncated tail).
  std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  Error error_ = Error::kNone;
};

}  // namespace pisa::net
