#include "net/rpc_scenario.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace pisa::rpc {

TcpScenarioDriver::TcpScenarioDriver(RpcServer& server, RpcClient& client,
                                     const core::PisaConfig& cfg,
                                     std::vector<watch::PuSite> sites,
                                     const radio::PathLossModel& model,
                                     double timeout_ms)
    : server_(server),
      client_(client),
      cfg_(cfg),
      sites_(std::move(sites)),
      model_(model),
      d_c_m_(watch::exclusion_radius_m(cfg.watch, model)),
      timeout_ms_(timeout_ms) {}

void TcpScenarioDriver::pu_move(std::uint32_t pu_id, std::uint32_t block) {
  client_.pu(pu_id).move_to(block);
}

void TcpScenarioDriver::sync_server() {
  if (!server_.sdc_running()) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<std::int64_t>(timeout_ms_ * 1e3));
  // Arrival first: each fold enqueues its probe round *before* bumping the
  // counter, so once the counters cover every update we sent, one lane
  // quiesce below is enough to know those probe rounds have run too.
  for (;;) {
    const auto& stats = server_.sdc().stats();
    if (stats.pu_updates + stats.pu_deltas >= expected_updates_) break;
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error(
          "TcpScenarioDriver: timed out waiting for PU updates to fold");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  server_.transport().quiesce(timeout_ms_);
}

bool TcpScenarioDriver::pu_send(std::uint32_t pu_id,
                                const watch::PuTuning& tuning, bool use_delta) {
  bool sent = true;
  if (use_delta) {
    sent = client_.pu_delta(pu_id, tuning).has_value();
  } else {
    client_.pu_update(pu_id, tuning);
  }
  if (sent) {
    ++expected_updates_;
    sync_server();  // fold + re-probe round done before the tick proceeds
  }
  return sent;
}

core::ScenarioDriver::RequestResult TcpScenarioDriver::su_request(
    const watch::SuRequest& request, std::uint32_t range_pad) {
  const auto f = watch::build_su_f_matrix(cfg_.watch, sites_, request.block,
                                          request.eirp_mw_per_channel, model_,
                                          d_c_m_);
  const auto range = core::disclosed_range(f, request.block.index, range_pad);
  auto prepared = client_.prepare_request(request.su_id, f, range);
  client_.submit(prepared);

  RequestResult res;
  core::SuResponseMsg resp;
  bool fast = false;
  if (!client_.wait_response(prepared.request_id, &resp, timeout_ms_, &fast))
    return res;  // completed = false: transport failure / timeout
  res.completed = true;
  if (fast) {
    res.fast_denied = true;  // §3.8 one-round deny: no license, serial 0
    return res;
  }
  auto outcome =
      client_.su(request.su_id).process_response(resp, server_.license_key());
  res.granted = outcome.granted;
  res.serial = outcome.license.serial;
  return res;
}

void TcpScenarioDriver::crash_sdc() {
  sync_server();  // sim crashes on a drained network; don't strand frames
  server_.crash_sdc();
  expected_updates_ = 0;
}

void TcpScenarioDriver::restart_sdc() {
  server_.restart_sdc();
  expected_updates_ = 0;  // the fresh SdcServer's counters start at zero
}

bool TcpScenarioDriver::sdc_running() { return server_.sdc_running(); }

std::vector<std::uint8_t> TcpScenarioDriver::exhausted_state_bytes() {
  sync_server();  // post-grant budget folds re-probe after the response
  return server_.sdc().state().exhausted_state_bytes();
}
std::uint64_t TcpScenarioDriver::wal_bytes() {
  sync_server();
  return server_.sdc().state().wal_bytes();
}
std::uint64_t TcpScenarioDriver::delta_cells_folded() {
  sync_server();
  return server_.sdc().state().delta_cells_folded();
}

}  // namespace pisa::rpc
