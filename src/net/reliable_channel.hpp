// Reliable delivery over the lossy simulated network.
//
// ReliableTransport wraps a SimulatedNetwork behind the Transport interface
// and gives every registered endpoint sequence-numbered, acknowledged,
// checksum-verified delivery:
//   * DATA frames carry (seq, app payload) plus a CRC-32 trailer; frames
//     that fail the checksum are rejected and NACKed so the sender re-sends
//     immediately instead of waiting out the retransmission timer;
//   * every valid DATA frame is ACKed, and a bounded per-(sender, peer)
//     dedup window suppresses duplicates — injected by the network or
//     created by retransmission after a lost ACK — so the application
//     handler sees each message at most once;
//   * unACKed frames are retransmitted on a virtual-time timeout with
//     exponential backoff (timeout_us · backoff^k) and abandoned after
//     max_retries retransmissions, reporting a GiveUp to the failure
//     handler instead of hanging the simulation.
//
// Frame layout (all little-endian, sealed by codec seal_frame):
//   u8 kind (0 = DATA, 1 = ACK, 2 = NACK) | u64 seq |
//   [DATA only: u32 len | payload bytes] | u32 crc32
// The wire Message keeps the application `type` on DATA frames so the
// audit trail stays readable; ACK/NACK frames use "rel_ack" / "rel_nack".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/bus.hpp"

namespace pisa::net {

inline constexpr const char* kMsgAck = "rel_ack";
inline constexpr const char* kMsgNack = "rel_nack";

struct ReliablePolicy {
  std::size_t max_retries = 6;      ///< retransmissions before giving up
  double timeout_us = 4'000.0;      ///< initial retransmission timeout
  double backoff = 2.0;             ///< timeout multiplier per retransmission
  std::size_t dedup_window = 4096;  ///< (peer, seq) entries remembered
};

/// Bounded (sender, seq) memory for application-level idempotency — the
/// second line of defence behind the transport dedup window. seq 0 marks a
/// raw (unframed) delivery and is never treated as a replay.
class DedupWindow {
 public:
  explicit DedupWindow(std::size_t capacity = 4096) : cap_(capacity) {}

  /// True the first time (sender, seq) is seen; false for replays.
  bool first_time(const std::string& sender, std::uint64_t seq);

 private:
  std::size_t cap_;
  std::set<std::pair<std::string, std::uint64_t>> seen_;
  std::deque<std::pair<std::string, std::uint64_t>> order_;
};

class ReliableTransport final : public Transport {
 public:
  explicit ReliableTransport(SimulatedNetwork& net, ReliablePolicy policy = {});

  /// Register an application endpoint. Both ends of a link must go through
  /// the same ReliableTransport so frames and ACKs are interpreted
  /// consistently.
  void register_endpoint(const std::string& name, Handler handler) override;

  /// Remove the endpoint here and on the underlying network (a crashed
  /// party). Its unacknowledged outgoing frames are dropped with it, and
  /// every peer's connection state to the name — outstanding frames and the
  /// receive-sequence history — is torn down too, so armed retransmission
  /// timers fall silent and a restarted incarnation (numbering again from
  /// seq 1) is not mistaken for a replay of the old one.
  void remove_endpoint(const std::string& name) override;

  /// Reliable send: m.from must be a registered endpoint (it receives the
  /// ACKs). The payload is framed, checksummed and retransmitted until
  /// acknowledged or the retry budget is exhausted.
  void send(Message m) override;

  /// Application timers pass straight through to the underlying network's
  /// virtual clock (the transport adds no framing to time).
  void schedule_after(double delay_us, std::function<void()> fn) override;

  /// A message the transport gave up on after exhausting its retries.
  struct GiveUp {
    std::string from;
    std::string to;
    std::string type;
    std::uint64_t seq = 0;
    std::size_t attempts = 0;  ///< transmissions, including the original
  };
  using FailureHandler = std::function<void(const GiveUp&)>;
  void set_failure_handler(FailureHandler handler) {
    on_failure_ = std::move(handler);
  }
  const std::vector<GiveUp>& failures() const { return failures_; }

  struct Stats {
    std::uint64_t data_sent = 0;     ///< first transmissions
    std::uint64_t retransmits = 0;   ///< timer- or NACK-triggered re-sends
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t delivered = 0;     ///< app messages handed to handlers
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t corrupt_rejected = 0;
    std::uint64_t gave_up = 0;

    bool operator==(const Stats&) const = default;
  };
  const Stats& stats() const { return stats_; }

  const ReliablePolicy& policy() const { return policy_; }

 private:
  enum Kind : std::uint8_t { kData = 0, kAck = 1, kNack = 2 };

  struct Outstanding {
    std::string type;
    std::vector<std::uint8_t> frame;  // pristine sealed copy for re-sends
    std::size_t retransmits = 0;
  };
  struct PeerSend {
    std::map<std::uint64_t, Outstanding> outstanding;
  };
  struct PeerRecv {
    std::set<std::uint64_t> seen;
    std::deque<std::uint64_t> order;
  };
  struct Endpoint {
    Handler app;
    std::map<std::string, PeerSend> tx;  // by destination
    std::map<std::string, PeerRecv> rx;  // by sender
  };

  void on_frame(const std::string& self, const Message& raw);
  void arm_timer(const std::string& from, const std::string& to,
                 std::uint64_t seq);
  void on_timeout(const std::string& from, const std::string& to,
                  std::uint64_t seq);
  /// Re-send an outstanding frame if the retry budget allows; gives up
  /// (erasing it and reporting the loss) when `exhausted_gives_up`.
  void retransmit(const std::string& from, const std::string& to,
                  std::uint64_t seq, bool exhausted_gives_up);
  void send_control(Kind kind, const std::string& from, const std::string& to,
                    std::uint64_t seq);

  SimulatedNetwork& net_;
  ReliablePolicy policy_;
  std::map<std::string, Endpoint> endpoints_;
  /// Transport-global DATA sequence counter. Sharing one numbering across
  /// all connections makes every (sender, seq) pair unique for the lifetime
  /// of the transport — in particular, an endpoint that crashes and
  /// re-registers never reuses its predecessor's numbers, so peers'
  /// application-level idempotency windows keyed on (sender, seq) stay
  /// correct across incarnations.
  std::uint64_t next_seq_ = 1;
  Stats stats_;
  std::vector<GiveUp> failures_;
  FailureHandler on_failure_;
};

}  // namespace pisa::net
