// Seeded fault injection for the simulated network.
//
// A FaultPlan gives per-link probabilities for the failure modes a real
// deployment must survive: loss, duplication, reordering, corruption and
// extra queueing delay. Every probabilistic decision inside SimulatedNetwork
// is drawn from a ChaCha20 stream keyed by an explicit seed
// (SimulatedNetwork::set_fault_seed), so a failure schedule is a pure
// function of (seed, message sequence) — any chaos run can be replayed
// bit-for-bit from its seed.
#pragma once

#include <cstdint>

namespace pisa::net {

/// Per-link fault probabilities, each in [0, 1]. The checks are applied in
/// a fixed order per send — drop, corrupt, reorder/delay, duplicate — so a
/// plan plus a seed fully determines the schedule.
struct FaultPlan {
  double drop = 0.0;       ///< message vanishes entirely
  double duplicate = 0.0;  ///< a second copy arrives (slightly later)
  double corrupt = 0.0;    ///< 1..max_bit_flips payload bits are flipped
  double reorder = 0.0;    ///< extra delay pushes the message past later ones
  double delay = 0.0;      ///< extra delay without intent to reorder
  double max_extra_delay_us = 5'000.0;  ///< cap for reorder/delay jitter
  int max_bit_flips = 3;

  bool any() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || reorder > 0 || delay > 0;
  }
};

/// Counts of injected faults (global or per link).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
  std::uint64_t unknown_endpoint = 0;

  bool operator==(const FaultStats&) const = default;
};

}  // namespace pisa::net
