#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace pisa::net {

namespace {

// epoll_event.data.u64 tags; connection ids start above these.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

void throw_errno(const char* what) {
  throw std::runtime_error(std::string("TcpTransport: ") + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

}  // namespace

TcpTransport::TcpTransport(TcpOptions opts) : opts_(opts) {
  if (opts_.dispatch_low_water > opts_.dispatch_high_water)
    opts_.dispatch_low_water = opts_.dispatch_high_water;
  next_conn_id_ = kFirstConnId;
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0)
    throw_errno("epoll_ctl(wake)");
  io_thread_ = std::thread([this] { io_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (io_thread_.joinable()) io_thread_.join();
    if (dispatch_thread_.joinable()) dispatch_thread_.join();
    return;
  }
  wake_io();
  dispatch_cv_.notify_all();
  dispatch_idle_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  conns_.clear();
  routes_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fd_);
  ::close(epfd_);
  wake_fd_ = epfd_ = -1;
  drained_cv_.notify_all();
}

void TcpTransport::wake_io() {
  std::uint64_t one = 1;
  // Best-effort: the counter saturating (EAGAIN) still leaves it readable.
  [[maybe_unused]] auto n = ::write(wake_fd_, &one, sizeof one);
}

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  std::lock_guard<std::mutex> lk(mu_);
  if (listen_fd_ >= 0)
    throw std::runtime_error("TcpTransport: already listening");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind");
  }
  if (::listen(fd, 256) < 0) {
    int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("getsockname");
  }
  set_nonblocking(fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("epoll_ctl(listen)");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return port_;
}

std::uint64_t TcpTransport::connect(const std::string& host, std::uint16_t port,
                                    std::vector<std::string> route_names) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("TcpTransport: bad host " + host);
  }
  // Blocking connect, then flip to non-blocking: connection setup is a
  // client bootstrap step, not a hot path, and loopback completes at once.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("connect");
  }
  set_nonblocking(fd);
  int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);

  std::lock_guard<std::mutex> lk(mu_);
  auto conn = std::make_unique<Conn>(opts_.max_frame_bytes);
  conn->id = next_conn_id_++;
  conn->fd = fd;
  conn->inbound = false;
  std::uint64_t id = conn->id;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("epoll_ctl(conn)");
  }
  conns_.emplace(id, std::move(conn));
  for (auto& name : route_names) routes_[name] = id;
  ++stats_.connections_opened;
  return id;
}

void TcpTransport::close_connection(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  it->second->doomed = true;
  wake_io();
}

void TcpTransport::register_endpoint(const std::string& name, Handler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!endpoints_.emplace(name, std::move(handler)).second)
    throw std::invalid_argument("TcpTransport: endpoint name taken: " + name);
}

void TcpTransport::remove_endpoint(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  endpoints_.erase(name);
}

void TcpTransport::record_failure_locked(const Message& m, std::string reason) {
  failures_.push_back(
      {m.from, m.to, m.type, m.payload.size(), std::move(reason)});
}

void TcpTransport::enqueue_dispatch_locked(DispatchItem item) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> dlk(dmu_);
    dispatch_.push_back(std::move(item));
    depth = dispatch_.size();
    if (depth > stats_.peak_dispatch_depth) stats_.peak_dispatch_depth = depth;
  }
  dispatch_cv_.notify_one();
  if (depth >= opts_.dispatch_high_water) wake_io();  // engage read pause
}

void TcpTransport::queue_frame_locked(Conn& c, const Message& m) {
  auto record = encode_frame(m);
  c.wq_bytes += record.size();
  c.wq.push_back(std::move(record));
  if (c.wq_bytes > stats_.peak_write_queue_bytes)
    stats_.peak_write_queue_bytes = c.wq_bytes;
  ++stats_.frames_sent;
  if (c.wq_bytes > opts_.max_write_queue_bytes) {
    // Slow reader: the peer is not draining its socket. Cut it loose rather
    // than let one connection's backlog grow without bound.
    c.doomed = true;
    ++stats_.slow_reader_closed;
  }
  c.want_write = true;
  wake_io();
}

void TcpTransport::send(Message m) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stopping_.load()) return;
  if (m.net_seq == 0) m.net_seq = next_seq_++;
  if (endpoints_.contains(m.to)) {
    ++stats_.local_delivered;
    enqueue_dispatch_locked({std::move(m), nullptr});
    return;
  }
  auto rt = routes_.find(m.to);
  if (rt == routes_.end()) {
    ++stats_.dropped_no_route;
    record_failure_locked(m, "no route to endpoint");
    return;
  }
  auto it = conns_.find(rt->second);
  if (it == conns_.end() || it->second->doomed) {
    ++stats_.dropped_no_route;
    record_failure_locked(m, "route to closed connection");
    return;
  }
  queue_frame_locked(*it->second, m);
}

void TcpTransport::schedule_after(double delay_us, std::function<void()> fn) {
  auto due = std::chrono::steady_clock::now() +
             std::chrono::microseconds(static_cast<std::int64_t>(delay_us));
  {
    std::lock_guard<std::mutex> lk(mu_);
    timers_.push({due, next_timer_seq_++, std::move(fn)});
  }
  wake_io();
}

bool TcpTransport::flush(double timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  return drained_cv_.wait_for(
      lk, std::chrono::microseconds(static_cast<std::int64_t>(timeout_ms * 1e3)),
      [this] {
        for (const auto& [id, c] : conns_)
          if (c->wq_bytes > 0 && !c->doomed) return false;
        return true;
      });
}

TcpTransport::Stats TcpTransport::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<DeliveryFailure> TcpTransport::delivery_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failures_;
}

// --- I/O thread --------------------------------------------------------------

void TcpTransport::update_epoll_interest(Conn& c) {
  if (c.fd < 0) return;
  epoll_event ev{};
  ev.events = (c.read_paused ? 0u : EPOLLIN) | (c.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(epfd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void TcpTransport::close_conn_locked(Conn& c) {
  if (c.fd >= 0) {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
  }
  if (c.reader.buffered_bytes() > 0) ++stats_.truncated_streams;
  for (auto it = routes_.begin(); it != routes_.end();)
    it = (it->second == c.id) ? routes_.erase(it) : std::next(it);
  ++stats_.connections_closed;
}

void TcpTransport::handle_accept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; stay listening
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (conns_.size() >= opts_.max_connections) {
      // Admission control: shed the connection immediately instead of
      // letting it camp in the backlog until it times out.
      ++stats_.admission_rejected;
      ::close(fd);
      continue;
    }
    int yes = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
    auto conn = std::make_unique<Conn>(opts_.max_frame_bytes);
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->inbound = true;
    conn->read_paused = reads_paused_;
    epoll_event ev{};
    ev.events = (reads_paused_ ? 0u : EPOLLIN);
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    ++stats_.connections_accepted;
    conns_.emplace(conn->id, std::move(conn));
  }
}

void TcpTransport::handle_readable(std::uint64_t conn_id) {
  Conn* c;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end() || it->second->doomed) return;
    c = it->second.get();
  }
  // The reader and fd are I/O-thread-owned; sockets are read without the
  // lock so a long feed never stalls senders.
  std::uint8_t buf[64 * 1024];
  bool eof = false;
  std::size_t got_total = 0;
  for (;;) {
    ssize_t n = ::read(c->fd, buf, sizeof buf);
    if (n > 0) {
      got_total += static_cast<std::size_t>(n);
      c->reader.feed({buf, static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // ECONNRESET and friends
    break;
  }

  std::lock_guard<std::mutex> lk(mu_);
  stats_.bytes_received += got_total;
  Message m;
  for (;;) {
    auto status = c->reader.poll(&m);
    if (status == FrameReader::Poll::kNeedMore) break;
    if (status == FrameReader::Poll::kReject) {
      // Framing is unrecoverable on a byte stream — drop the connection.
      if (c->reader.error() == FrameReader::Error::kOversize)
        ++stats_.oversize_streams;
      else
        ++stats_.corrupt_streams;
      c->doomed = true;
      break;
    }
    ++stats_.frames_received;
    // Learn the return route: replies to this peer's registered names go
    // back over the connection they last arrived on (latest wins, so a
    // reconnected client supersedes its dead predecessor).
    if (!m.from.empty()) routes_[m.from] = c->id;
    enqueue_dispatch_locked({std::move(m), nullptr});
    m = Message{};
  }
  if (eof && !c->doomed) c->doomed = true;
}

void TcpTransport::handle_writable(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (c.fd < 0) return;
  while (!c.wq.empty()) {
    const auto& front = c.wq.front();
    ssize_t n = ::send(c.fd, front.data() + c.wq_front_off,
                       front.size() - c.wq_front_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      c.doomed = true;  // broken pipe / reset
      break;
    }
    stats_.bytes_sent += static_cast<std::size_t>(n);
    c.wq_front_off += static_cast<std::size_t>(n);
    c.wq_bytes -= static_cast<std::size_t>(n);
    if (c.wq_front_off == front.size()) {
      c.wq.pop_front();
      c.wq_front_off = 0;
    }
  }
  c.want_write = !c.wq.empty() && !c.doomed;
  update_epoll_interest(c);
  if (c.wq.empty()) drained_cv_.notify_all();
}

void TcpTransport::apply_read_pause() {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> dlk(dmu_);
    depth = dispatch_.size();
  }
  std::lock_guard<std::mutex> lk(mu_);
  bool should_pause = reads_paused_ ? depth > opts_.dispatch_low_water
                                    : depth >= opts_.dispatch_high_water;
  if (should_pause == reads_paused_) return;
  reads_paused_ = should_pause;
  if (should_pause) ++stats_.reads_paused;
  for (auto& [id, c] : conns_) {
    if (c->fd < 0 || c->doomed) continue;
    c->read_paused = should_pause;
    update_epoll_interest(*c);
  }
}

void TcpTransport::io_loop() {
  std::vector<epoll_event> events(128);
  while (!stopping_.load()) {
    // Arm pending writes, reap doomed connections, honor backpressure.
    apply_read_pause();
    int timeout_ms = 500;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        Conn& c = *it->second;
        if (c.doomed) {
          close_conn_locked(c);
          it = conns_.erase(it);
          drained_cv_.notify_all();
          continue;
        }
        if (c.want_write && c.fd >= 0) update_epoll_interest(c);
        ++it;
      }
      if (!timers_.empty()) {
        auto now = std::chrono::steady_clock::now();
        auto due = timers_.top().due;
        auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      due - now).count();
        timeout_ms = static_cast<int>(std::max<std::int64_t>(0, ms));
        timeout_ms = std::min(timeout_ms, 500);
      }
    }

    int n = ::epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                         timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof drain) > 0) {
        }
      } else if (tag == kListenTag) {
        handle_accept();
      } else {
        if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR))
          handle_readable(tag);
        if (events[i].events & EPOLLOUT) handle_writable(tag);
      }
    }

    // Fire due timers onto the dispatch lane (same thread as handlers, so
    // entity timer callbacks never race their message handlers).
    std::vector<std::function<void()>> due_fns;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto now = std::chrono::steady_clock::now();
      while (!timers_.empty() && timers_.top().due <= now) {
        due_fns.push_back(timers_.top().fn);
        timers_.pop();
      }
      for (auto& fn : due_fns)
        enqueue_dispatch_locked({Message{}, std::move(fn)});
    }
  }
}

// --- dispatch thread ---------------------------------------------------------

bool TcpTransport::quiesce(double timeout_ms) {
  std::unique_lock<std::mutex> lk(dmu_);
  return dispatch_idle_cv_.wait_for(
      lk, std::chrono::microseconds(static_cast<std::int64_t>(timeout_ms * 1e3)),
      [this] {
        return stopping_.load() || (dispatch_.empty() && !dispatch_busy_);
      });
}

void TcpTransport::dispatch_loop() {
  for (;;) {
    DispatchItem item;
    std::size_t depth_after;
    {
      std::unique_lock<std::mutex> lk(dmu_);
      dispatch_cv_.wait(lk, [this] {
        return stopping_.load() || !dispatch_.empty();
      });
      if (stopping_.load()) return;
      item = std::move(dispatch_.front());
      dispatch_.pop_front();
      depth_after = dispatch_.size();
      dispatch_busy_ = true;
    }
    // Crossing the low-water mark un-pauses reads (the I/O thread makes the
    // actual epoll changes on its next pass).
    if (depth_after == opts_.dispatch_low_water) wake_io();

    if (item.fn) {
      item.fn();
    } else {
      Handler handler;
      {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = endpoints_.find(item.msg.to);
        if (it == endpoints_.end()) {
          ++stats_.dropped_no_endpoint;
          record_failure_locked(item.msg, "unknown endpoint");
        } else {
          handler = it->second;  // copy: handler may remove/replace itself
        }
      }
      if (handler) handler(item.msg);
    }

    {
      std::lock_guard<std::mutex> lk(dmu_);
      dispatch_busy_ = false;
      if (dispatch_.empty()) dispatch_idle_cv_.notify_all();
    }
  }
}

}  // namespace pisa::net
