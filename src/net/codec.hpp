// Binary serialization for protocol messages.
//
// Little-endian fixed-width integers, length-prefixed byte strings and
// big-endian magnitude encoding for BigUint (length-prefixed). Every PISA
// message body is produced by an Encoder and consumed by a Decoder; the
// byte counts these produce are what the Figure 6 communication-overhead
// numbers are measured from.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bigint/biguint.hpp"

namespace pisa::net {

class Encoder {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);

  /// Length-prefixed (u32) raw bytes.
  void put_bytes(std::span<const std::uint8_t> bytes);

  /// Unprefixed raw bytes — for fixed-width records whose framing the
  /// caller already encoded (put_ciphertexts' |n²|-wide entries). One
  /// memcpy instead of a per-byte loop; matters at Figure-6 message sizes.
  void put_raw(std::span<const std::uint8_t> bytes);

  /// Length-prefixed UTF-8 string.
  void put_string(std::string_view s);

  /// Length-prefixed big-endian magnitude.
  void put_biguint(const bn::BigUint& v);

  std::size_t size() const { return buf_.size(); }

  /// Move the accumulated buffer out; the encoder is empty afterwards.
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Throws DecodeError on truncated or malformed input.
struct DecodeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::vector<std::uint8_t> get_bytes();

  /// Unprefixed fixed-width read, mirroring Encoder::put_raw. The returned
  /// span aliases the decoder's input buffer; consume it before the buffer
  /// goes away.
  std::span<const std::uint8_t> get_raw(std::size_t n);
  std::string get_string();
  bn::BigUint get_biguint();

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Throws DecodeError unless all input was consumed.
  void expect_done() const;

 private:
  std::span<const std::uint8_t> need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- frame checksums --------------------------------------------------------
// Network frames carry a CRC-32 trailer so link corruption is rejected at
// the transport layer instead of reaching a Message handler (or worse, a
// Paillier decryption) as well-formed-looking garbage.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Append a little-endian CRC-32 trailer over the current contents.
void seal_frame(std::vector<std::uint8_t>& frame);

/// Verify and strip a seal_frame() trailer. Returns false — leaving `frame`
/// untouched — when the trailer is missing or does not match.
bool open_frame(std::vector<std::uint8_t>& frame);

}  // namespace pisa::net
