#include "net/frame.hpp"

#include <cstring>

#include "net/codec.hpp"

namespace pisa::net {

std::vector<std::uint8_t> encode_frame(const Message& m) {
  Encoder body;
  body.put_string(m.from);
  body.put_string(m.to);
  body.put_string(m.type);
  body.put_u64(m.net_seq);
  body.put_bytes(m.payload);
  auto sealed = body.take();
  seal_frame(sealed);

  std::vector<std::uint8_t> record;
  record.reserve(4 + sealed.size());
  auto len = static_cast<std::uint32_t>(sealed.size());
  for (int i = 0; i < 4; ++i)
    record.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  record.insert(record.end(), sealed.begin(), sealed.end());
  return record;
}

Message decode_frame_body(std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> sealed(body.begin(), body.end());
  if (!open_frame(sealed)) throw DecodeError("frame: checksum mismatch");
  Decoder dec{sealed};
  Message m;
  m.from = dec.get_string();
  m.to = dec.get_string();
  m.type = dec.get_string();
  m.net_seq = dec.get_u64();
  m.payload = dec.get_bytes();
  dec.expect_done();
  return m;
}

FrameReader::FrameReader(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != Error::kNone) return;  // poisoned: drop everything
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state feeds are a single append.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameReader::Poll FrameReader::poll(Message* out) {
  if (error_ != Error::kNone) return Poll::kReject;
  if (buf_.size() - pos_ < 4) return Poll::kNeedMore;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  // Reject an absurd length *before* buffering its body: a flipped length
  // prefix must never make the reader allocate or wait for gigabytes.
  if (len > max_frame_bytes_) {
    error_ = Error::kOversize;
    return Poll::kReject;
  }
  if (buf_.size() - pos_ - 4 < len) return Poll::kNeedMore;
  std::span<const std::uint8_t> body{buf_.data() + pos_ + 4, len};
  try {
    Message m = decode_frame_body(body);
    pos_ += 4 + len;
    if (out != nullptr) *out = std::move(m);
    return Poll::kFrame;
  } catch (const DecodeError&) {
    error_ = Error::kBadFrame;
    return Poll::kReject;
  }
}

}  // namespace pisa::net
