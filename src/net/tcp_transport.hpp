// Real epoll TCP transport (DESIGN.md §3.7).
//
// TcpTransport puts the Transport abstraction — the same interface
// SimulatedNetwork and ReliableTransport implement — on genuine
// non-blocking sockets, so the multi-round SDC↔STP↔SU protocol pays real
// syscall, framing and scheduling costs. One instance plays either (or
// both) of two roles:
//   * server — listen() binds 127.0.0.1:port (port 0 = kernel-assigned,
//     discovered via port(); every test binds 0, killing the port-collision
//     flake class), accepts connections under an admission cap, and learns
//     return routes from the `from` field of arriving frames;
//   * client — connect() opens a connection and routes the given endpoint
//     names (e.g. "sdc", "stp") over it. Any number of logical sessions
//     multiplex over one connection.
//
// Threading model: one I/O thread runs the epoll loop and touches sockets
// exclusively; one dispatch thread runs application handlers and timer
// callbacks strictly serially, in arrival order. The split is what makes
// the front-end async — a handler deep in a Paillier pipeline never stalls
// accepts, reads or writes — while the serial dispatch lane preserves the
// entities' single-threaded handler contract (their internal batch
// pipelines fan out on the shared exec::ThreadPool as usual, DESIGN.md
// §3.1/§3.5).
//
// Flow control, both directions:
//   * write side — each connection owns a bounded write queue. A peer that
//     stops reading (responses pile up against a full socket buffer) is
//     disconnected once the queue tops max_write_queue_bytes: server memory
//     stays bounded by max_connections × cap instead of OOMing behind one
//     slow reader.
//   * read side — parsed-but-undispatched frames are bounded too: past
//     dispatch_high_water the I/O thread drops EPOLLIN interest on every
//     data connection, kernel socket buffers fill, and the senders' own
//     write queues absorb the backpressure; reads resume below
//     dispatch_low_water.
//
// Delivery semantics: TCP gives in-order exactly-once delivery per
// connection, so there is no seq/ack machinery here. Across connection
// resets the transport is at-most-once; exactly-once is the application
// dedup layer's job (net::DedupWindow keyed on (sender, seq), PR 2), which
// works because send() stamps every frame from a transport-global counter
// and a re-sending caller may pin Message::net_seq to its first attempt.
// remove_endpoint/re-register keeps PR 6's restart semantics: frames for a
// removed name are recorded as delivery failures, never delivered late.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "net/bus.hpp"
#include "net/frame.hpp"

namespace pisa::net {

struct TcpOptions {
  /// Framer ceiling per record (flipped length prefixes must not allocate).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Per-connection bound on queued-but-unwritten bytes; a connection whose
  /// queue exceeds this is closed as a slow reader.
  std::size_t max_write_queue_bytes = 32u << 20;

  /// Accept admission cap: connections beyond this are accepted and
  /// immediately closed (the cheap way to shed load without leaving the
  /// backlog to time out).
  std::size_t max_connections = 1024;

  /// Read-side backpressure: pause EPOLLIN on data connections once this
  /// many parsed frames await dispatch; resume below dispatch_low_water.
  std::size_t dispatch_high_water = 4096;
  std::size_t dispatch_low_water = 1024;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpOptions opts = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral) and return the bound
  /// port. One listener per transport; throws std::runtime_error on failure
  /// or if already listening.
  std::uint16_t listen(std::uint16_t port = 0);
  std::uint16_t port() const { return port_; }

  /// Open a client connection and route messages addressed to any name in
  /// `route_names` over it. Returns the connection id. Throws on failure.
  std::uint64_t connect(const std::string& host, std::uint16_t port,
                        std::vector<std::string> route_names);

  /// Hard-close one connection (test hook: simulates a reset mid-session).
  /// Unwritten queued frames are dropped with it. Idempotent.
  void close_connection(std::uint64_t conn_id);

  // --- Transport ------------------------------------------------------------
  void register_endpoint(const std::string& name, Handler handler) override;
  void remove_endpoint(const std::string& name) override;

  /// Route and enqueue one message. Thread-safe. Local `to` endpoints are
  /// dispatched through the same serial lane as network arrivals (so
  /// SDC↔STP traffic inside one process needs no socket); unroutable
  /// messages are recorded as delivery failures, mirroring
  /// SimulatedNetwork's semantics. net_seq 0 is replaced from the
  /// transport-global counter; a nonzero net_seq is preserved (re-send
  /// pinning for application-level dedup).
  void send(Message m) override;

  /// Real-time timer: `fn` runs on the dispatch thread after `delay_us`
  /// microseconds of wall clock (the simulated stack interprets the same
  /// call in virtual time).
  void schedule_after(double delay_us, std::function<void()> fn) override;

  // --- teardown / draining --------------------------------------------------
  /// Stop both threads and close every socket. Called by the destructor;
  /// idempotent. Frames already handed to handlers are done; queued ones
  /// are dropped.
  void stop();

  /// Block until every connection's write queue is empty (all queued bytes
  /// handed to the kernel) or `timeout_ms` elapses. Returns true when
  /// drained — the clean-teardown handshake tests use before stop().
  bool flush(double timeout_ms);

  /// Block until the dispatch lane is idle — queue empty and no handler
  /// executing — or `timeout_ms` elapses. Returns true when idle. Because
  /// handlers enqueue their local follow-on sends before returning (the
  /// serial lane), an idle lane means every causal chain rooted in an
  /// already-dispatched frame has fully run; frames still in the kernel or
  /// on the I/O thread are not covered, so callers gate on an
  /// application-level arrival signal first.
  bool quiesce(double timeout_ms);

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_opened = 0;   ///< client-side connect()s
    std::uint64_t connections_closed = 0;
    std::uint64_t admission_rejected = 0;   ///< accepted-then-closed over cap
    std::uint64_t slow_reader_closed = 0;   ///< write-queue cap exceeded
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_sent = 0;           ///< on-the-wire (incl. framing)
    std::uint64_t bytes_received = 0;
    std::uint64_t local_delivered = 0;      ///< loopback (no socket) deliveries
    std::uint64_t corrupt_streams = 0;      ///< CRC/layout reject → conn drop
    std::uint64_t oversize_streams = 0;     ///< length-prefix reject → drop
    std::uint64_t truncated_streams = 0;    ///< EOF mid-frame
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_no_endpoint = 0;
    std::uint64_t reads_paused = 0;         ///< backpressure engagements
    std::size_t peak_write_queue_bytes = 0; ///< high-water across all conns
    std::size_t peak_dispatch_depth = 0;
  };
  Stats stats() const;

  /// send()s that could not be delivered (no route / endpoint removed),
  /// mirroring SimulatedNetwork::delivery_failures().
  std::vector<DeliveryFailure> delivery_failures() const;

 private:
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    bool inbound = false;
    FrameReader reader;
    std::deque<std::vector<std::uint8_t>> wq;
    std::size_t wq_front_off = 0;  // bytes of wq.front() already written
    std::size_t wq_bytes = 0;
    bool want_write = false;   // EPOLLOUT armed
    bool read_paused = false;  // EPOLLIN dropped (backpressure)
    bool doomed = false;       // close at next I/O-thread opportunity

    explicit Conn(std::size_t max_frame) : reader(max_frame) {}
  };

  struct DispatchItem {
    Message msg;                  // valid when fn is empty
    std::function<void()> fn;     // timer / internal callback
  };

  struct TimerItem {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const TimerItem& o) const {
      if (due != o.due) return due > o.due;
      return seq > o.seq;
    }
  };

  void io_loop();
  void dispatch_loop();
  void wake_io();

  // All of the below require mu_ held unless noted.
  void enqueue_dispatch_locked(DispatchItem item);
  void queue_frame_locked(Conn& c, const Message& m);
  void close_conn_locked(Conn& c);
  void record_failure_locked(const Message& m, std::string reason);

  // I/O-thread only.
  void handle_accept();
  void handle_readable(std::uint64_t conn_id);
  void handle_writable(std::uint64_t conn_id);
  void apply_read_pause();
  void update_epoll_interest(Conn& c);

  TcpOptions opts_;

  int epfd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;  // flush(): all write queues empty
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::string, Handler> endpoints_;
  std::map<std::string, std::uint64_t> routes_;  // endpoint name → conn id
  std::uint64_t next_seq_ = 1;
  Stats stats_;
  std::vector<DeliveryFailure> failures_;
  bool reads_paused_ = false;

  std::priority_queue<TimerItem, std::vector<TimerItem>, std::greater<>> timers_;
  std::uint64_t next_timer_seq_ = 0;

  std::mutex dmu_;
  std::condition_variable dispatch_cv_;
  std::condition_variable dispatch_idle_cv_;  // quiesce(): lane went idle
  std::deque<DispatchItem> dispatch_;
  bool dispatch_busy_ = false;  // a handler is executing (dmu_)

  std::atomic<bool> stopping_{false};
  std::thread io_thread_;
  std::thread dispatch_thread_;
};

}  // namespace pisa::net
