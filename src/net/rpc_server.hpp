// Async RPC serving front-end over the TCP transport (DESIGN.md §3.7).
//
// RpcServer hosts the two infrastructure entities — StpServer and
// SdcServer — behind one TcpTransport listener. Frames arriving from any
// connection are dispatched serially into the entities' existing attach()
// handlers (the same ones the simulated network drives), so the whole
// Figure 4/5 protocol logic is reused verbatim; the entities fan work out
// on the shared exec::ThreadPool internally, which is what makes the
// front-end async: the I/O thread keeps accepting and reading while a
// request is deep in a Paillier pipeline. SDC↔STP conversion traffic stays
// in-process (both endpoints are local to the transport, so it rides the
// dispatch lane without touching a socket), exactly like the co-located
// deployment the paper's Figure 6 accounting assumes.
//
// Construction order mirrors PisaSystem byte for byte — STP keygen, SDC
// keygen, threshold share, thread pools, attach — so a PisaSystem built
// from an identically-seeded rng is a bit-exact oracle for this server:
// same group key, same RSA license key, same per-entity ChaCha streams.
//
// RpcClient is the matching client bundle: it owns the SU/PU client
// objects, one client TcpTransport multiplexing every logical session over
// a single connection, a response registry keyed by request id, and the
// re-send bookkeeping (pinned net_seq, PR 2 discipline) that turns TCP's
// at-most-once-across-resets into application-level exactly-once.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bigint/random_source.hpp"
#include "core/config.hpp"
#include "core/pu_client.hpp"
#include "core/sdc_server.hpp"
#include "core/stp_server.hpp"
#include "core/su_client.hpp"
#include "net/tcp_transport.hpp"
#include "pir/pir_client.hpp"
#include "pir/pir_replica.hpp"
#include "watch/matrices.hpp"
#include "watch/plain_sdc.hpp"

namespace pisa::rpc {

class RpcServer {
 public:
  /// Build STP + SDC from `rng` (PisaSystem construction order), attach
  /// them to a fresh TcpTransport and start listening on 127.0.0.1:`port`
  /// (0 = ephemeral; read the bound port back with port()).
  explicit RpcServer(const core::PisaConfig& cfg, bn::RandomSource& rng,
                     net::TcpOptions opts = {}, std::uint16_t port = 0);

  std::uint16_t port() const { return tcp_.port(); }

  const crypto::PaillierPublicKey& group_key() const {
    return stp_->group_key();
  }
  const crypto::RsaPublicKey& license_key() const {
    return sdc_->license_key();
  }

  core::SdcServer& sdc() { return *sdc_; }
  core::StpServer& stp() { return *stp_; }
  bool sdc_running() const { return sdc_ != nullptr; }

  /// PR 6 restart semantics on the socket path: the endpoint leaves the
  /// transport first (in-flight frames to "sdc" become delivery failures,
  /// never late deliveries), then the entity and all its in-memory state
  /// are destroyed. restart_sdc() rebuilds it exactly like PisaSystem does.
  void crash_sdc();
  core::SdcServer& restart_sdc();

  /// §3.10: replica `index` (0 = SDC-hosted), or nullptr when crashed /
  /// not in PIR mode.
  pir::PirServer* pir_replica(std::size_t index);

  /// Kill a standalone replica (index ≥ 1): endpoint off the transport,
  /// object destroyed. A query in flight to it times out at the client —
  /// typed, never a partial reconstruction. Idempotent.
  void crash_pir_replica(std::size_t index);

  /// Off-path STP pool maintenance (always-warm mode); benches call this
  /// between waves, mirroring PisaSystem's post-drain call.
  void maintain_pools() { stp_->maintain_pools(); }

  net::TcpTransport& transport() { return tcp_; }

 private:
  core::PisaConfig cfg_;
  bn::RandomSource& rng_;
  net::TcpTransport tcp_;
  std::shared_ptr<exec::ThreadPool> exec_;
  std::unique_ptr<core::StpServer> stp_;
  std::unique_ptr<core::SdcServer> sdc_;
  /// §3.10 standalone replicas 1..ℓ−1 (null slot = crashed).
  std::vector<std::unique_ptr<pir::PirServer>> pir_extras_;
};

class RpcClient {
 public:
  /// Connect to an RpcServer and route "sdc"/"stp" over one multiplexed
  /// connection. `group_pk` is pk_G (retrieved from the STP out of band in
  /// the paper; handed over directly here). `rng` feeds SU/PU keygen and
  /// request randomness — seed it like the oracle world's master rng and
  /// make the same call sequence to get byte-identical traffic.
  RpcClient(const core::PisaConfig& cfg, crypto::PaillierPublicKey group_pk,
            std::string host, std::uint16_t port, bn::RandomSource& rng,
            net::TcpOptions opts = {});

  /// Create an SU client, register "su_<id>" as a local endpoint feeding
  /// the response registry, and upload pk_j to the STP (paper §III-C). The
  /// registration frame precedes any request on the same connection, so
  /// FIFO ordering makes the directory entry visible before first use.
  core::SuClient& add_su(std::uint32_t su_id, std::size_t precompute = 0);

  /// Create a PU client for `site` with the shared public E matrix, exactly
  /// like PisaSystem (a mobile PU needs the full matrix).
  core::PuClient& add_pu(const watch::PuSite& site);

  core::SuClient& su(std::uint32_t su_id);
  core::PuClient& pu(std::uint32_t pu_id);

  /// One PU tuning update, sent with a pinned net_seq so the exact frame
  /// can be re-sent after a connection reset: the SDC's (sender, seq)
  /// DedupWindow folds it into Ñ exactly once no matter how many copies
  /// arrive (PR 2 discipline; the chaos suite pins this).
  struct PuUpdateHandle {
    std::uint32_t pu_id = 0;
    std::uint64_t net_seq = 0;
    std::vector<std::uint8_t> bytes;
  };
  PuUpdateHandle pu_update(std::uint32_t pu_id, const watch::PuTuning& tuning);
  void resend_pu_update(const PuUpdateHandle& handle);

  /// §3.9 incremental update over the socket, with the same pinned-seq
  /// re-send discipline as pu_update. Returns nullopt (nothing sent) when
  /// the PU's delivered footprint already matches `tuning`.
  std::optional<PuUpdateHandle> pu_delta(std::uint32_t pu_id,
                                         const watch::PuTuning& tuning);
  void resend_pu_delta(const PuUpdateHandle& handle);

  /// An encrypted request, built off the clock: benches prepare every
  /// session's request first, then pour the whole burst down the pipe.
  struct PreparedRequest {
    std::uint64_t request_id = 0;
    std::uint32_t su_id = 0;
    std::vector<std::uint8_t> bytes;
  };
  PreparedRequest prepare_request(
      std::uint32_t su_id, const watch::QMatrix& f,
      std::optional<std::pair<std::uint32_t, std::uint32_t>> range =
          std::nullopt,
      core::PrepMode mode = core::PrepMode::kFresh);

  /// Fire one prepared request at the SDC (does not consume the handle —
  /// re-submitting the same bytes after a reset is the retry path; the SDC
  /// drops duplicate request ids while the original is still pending and
  /// re-serves completed ones with a fresh serial).
  void submit(const PreparedRequest& req);

  /// Block until the response for `request_id` arrives (dispatch thread
  /// fills the registry) or `timeout_ms` passes. Returns false on timeout.
  /// A §3.8 prefilter denial also completes the wait: `*fast_denied` is set
  /// true (when the pointer is given) and `*out` is left untouched — there
  /// is no SuResponseMsg for a fast-denied request, just the 32-byte
  /// FastDenyMsg the dispatch thread already validated.
  bool wait_response(std::uint64_t request_id, core::SuResponseMsg* out,
                     double timeout_ms, bool* fast_denied = nullptr);

  /// Responses received so far (registry size; drained by wait_response).
  std::size_t responses_pending() const;

  /// Per-response completion probe for load generators: called on the
  /// dispatch thread the moment each SU response lands in the registry —
  /// before any wait_response waiter wakes — so per-request completion
  /// timestamps are exact even when the bench drains waiters lazily. Set
  /// it before traffic starts; installation is not synchronized against
  /// in-flight deliveries.
  void set_response_hook(std::function<void(std::uint64_t)> hook) {
    on_response_ = std::move(hook);
  }

  /// §3.10 PIR round trip over the socket: split [block_lo, block_hi) into
  /// XOR shares, fire one query per replica, wait for all ℓ replies (or
  /// `timeout_ms`), reconstruct and decide locally against `f`.
  struct PirOutcome {
    /// False when a reply set never completed (replica crashed / timeout)
    /// or the replicas' versions diverged — `failure` says which. The
    /// decision fields are only meaningful when true.
    bool completed = false;
    bool granted = false;
    std::string failure;
    std::size_t query_bytes = 0;  ///< Σ encoded queries (SU → replicas)
    std::size_t reply_bytes = 0;  ///< Σ encoded replies (replicas → SU)
  };
  PirOutcome pir_request(std::uint32_t su_id, const watch::QMatrix& f,
                         std::uint32_t block_lo, std::uint32_t block_hi,
                         double timeout_ms);

  /// Tear the connection down mid-session and dial again (reset
  /// simulation). Unflushed frames on the old connection are dropped —
  /// at-most-once — and the re-send helpers above restore exactly-once.
  void reconnect();

  net::TcpTransport& transport() { return tcp_; }

 private:
  static std::string su_name(std::uint32_t id) {
    return "su_" + std::to_string(id);
  }

  /// Logical peers multiplexed over the one connection: sdc + stp, plus
  /// every PIR replica in PIR mode.
  std::vector<std::string> route_names() const;

  /// PIR mode: ship the PU's current plaintext column to every replica
  /// (pinned seqs — replica-side dedup keeps versions in lockstep under
  /// resends). No-op in Paillier mode.
  void send_pir_updates(std::uint32_t pu_id, const watch::PuTuning& tuning);

  core::PisaConfig cfg_;
  crypto::PaillierPublicKey group_pk_;
  std::string host_;
  std::uint16_t port_;
  bn::RandomSource& rng_;
  net::TcpTransport tcp_;
  std::uint64_t conn_id_ = 0;
  watch::QMatrix e_matrix_;

  std::map<std::uint32_t, std::unique_ptr<core::SuClient>> sus_;
  std::map<std::uint32_t, std::unique_ptr<core::PuClient>> pus_;
  std::map<std::uint32_t, std::unique_ptr<pir::PirClient>> pir_clients_;

  std::uint64_t next_request_id_ = 1;
  std::uint64_t next_pin_seq_ = 1;  // pinned seqs for re-sendable frames

  mutable std::mutex rmu_;
  std::condition_variable rcv_;
  std::map<std::uint64_t, core::SuResponseMsg> responses_;
  std::set<std::uint64_t> fast_denied_;  // rids answered by FastDenyMsg
  /// PIR replies by request id (complete at cfg.pir.replicas entries).
  std::map<std::uint64_t, std::vector<pir::PirReplyMsg>> pir_replies_;
  std::function<void(std::uint64_t)> on_response_;
};

}  // namespace pisa::rpc
