#include "net/bus.hpp"

#include <stdexcept>

namespace pisa::net {

SimulatedNetwork::SimulatedNetwork(double base_latency_us,
                                   double bandwidth_bytes_per_us)
    : base_latency_us_(base_latency_us),
      bandwidth_bytes_per_us_(bandwidth_bytes_per_us) {
  if (base_latency_us < 0 || bandwidth_bytes_per_us <= 0)
    throw std::invalid_argument("SimulatedNetwork: bad link parameters");
}

void SimulatedNetwork::register_endpoint(const std::string& name, Handler handler) {
  if (!handler) throw std::invalid_argument("SimulatedNetwork: null handler");
  auto [it, inserted] = endpoints_.emplace(name, std::move(handler));
  (void)it;
  if (!inserted)
    throw std::invalid_argument("SimulatedNetwork: duplicate endpoint " + name);
  audit_.emplace(name, std::vector<DeliveryRecord>{});
}

bool SimulatedNetwork::has_endpoint(const std::string& name) const {
  return endpoints_.contains(name);
}

void SimulatedNetwork::send(Message m) {
  if (!endpoints_.contains(m.to))
    throw std::out_of_range("SimulatedNetwork: unknown endpoint " + m.to);
  double transfer = static_cast<double>(m.payload.size()) / bandwidth_bytes_per_us_;
  double arrival = now_us_ + base_latency_us_ + transfer;
  queue_.push(Pending{arrival, next_seq_++, std::move(m)});
}

bool SimulatedNetwork::deliver_one() {
  if (queue_.empty()) return false;
  Pending p = queue_.top();
  queue_.pop();
  now_us_ = p.arrival_us;

  std::size_t bytes = p.msg.payload.size();
  auto& link = traffic_[{p.msg.from, p.msg.to}];
  link.messages += 1;
  link.bytes += bytes;
  total_.messages += 1;
  total_.bytes += bytes;
  audit_[p.msg.to].push_back({p.msg.from, p.msg.type, bytes, p.arrival_us});

  endpoints_.at(p.msg.to)(p.msg);
  return true;
}

std::size_t SimulatedNetwork::run() {
  std::size_t n = 0;
  while (deliver_one()) ++n;
  return n;
}

TrafficStats SimulatedNetwork::stats(const std::string& from,
                                     const std::string& to) const {
  auto it = traffic_.find({from, to});
  return it == traffic_.end() ? TrafficStats{} : it->second;
}

TrafficStats SimulatedNetwork::total_stats() const { return total_; }

const std::vector<DeliveryRecord>& SimulatedNetwork::audit_log(
    const std::string& endpoint) const {
  auto it = audit_.find(endpoint);
  if (it == audit_.end())
    throw std::out_of_range("SimulatedNetwork: unknown endpoint " + endpoint);
  return it->second;
}

}  // namespace pisa::net
