#include "net/bus.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "crypto/chacha_rng.hpp"

namespace pisa::net {

SimulatedNetwork::SimulatedNetwork(double base_latency_us,
                                   double bandwidth_bytes_per_us)
    : base_latency_us_(base_latency_us),
      bandwidth_bytes_per_us_(bandwidth_bytes_per_us) {
  if (base_latency_us < 0 || bandwidth_bytes_per_us <= 0)
    throw std::invalid_argument("SimulatedNetwork: bad link parameters");
}

SimulatedNetwork::~SimulatedNetwork() = default;

void SimulatedNetwork::register_endpoint(const std::string& name, Handler handler) {
  if (!handler) throw std::invalid_argument("SimulatedNetwork: null handler");
  auto [it, inserted] = endpoints_.emplace(name, std::move(handler));
  (void)it;
  if (!inserted)
    throw std::invalid_argument("SimulatedNetwork: duplicate endpoint " + name);
  audit_.emplace(name, std::vector<DeliveryRecord>{});
}

void SimulatedNetwork::remove_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

bool SimulatedNetwork::has_endpoint(const std::string& name) const {
  return endpoints_.contains(name);
}

void SimulatedNetwork::set_fault_seed(std::uint64_t seed) {
  fault_rng_ = std::make_unique<crypto::ChaChaRng>(seed);
}

void SimulatedNetwork::set_default_fault_plan(const FaultPlan& plan) {
  default_plan_ = std::make_unique<FaultPlan>(plan);
}

void SimulatedNetwork::set_fault_plan(const std::string& from,
                                      const std::string& to,
                                      const FaultPlan& plan) {
  link_plans_.insert_or_assign({from, to}, plan);
}

void SimulatedNetwork::clear_fault_plans() {
  default_plan_.reset();
  link_plans_.clear();
}

FaultStats SimulatedNetwork::link_fault_stats(const std::string& from,
                                              const std::string& to) const {
  auto it = link_fault_.find({from, to});
  return it == link_fault_.end() ? FaultStats{} : it->second;
}

const FaultPlan* SimulatedNetwork::plan_for(const std::string& from,
                                            const std::string& to) const {
  auto it = link_plans_.find({from, to});
  if (it != link_plans_.end()) return &it->second;
  return default_plan_.get();
}

double SimulatedNetwork::roll() {
  // 53-bit mantissa of a uniform double in [0, 1).
  return static_cast<double>(roll_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t SimulatedNetwork::roll_u64() { return fault_rng_->next_u64(); }

void SimulatedNetwork::send(Message m) {
  std::size_t bytes = m.payload.size();
  if (!endpoints_.contains(m.to)) {
    ++fault_stats_.unknown_endpoint;
    ++link_fault_[{m.from, m.to}].unknown_endpoint;
    failures_.push_back({m.from, m.to, m.type, bytes, "unknown_endpoint"});
    return;
  }
  double transfer = static_cast<double>(bytes) / bandwidth_bytes_per_us_;
  double arrival = now_us_ + base_latency_us_ + transfer;

  const FaultPlan* plan = plan_for(m.from, m.to);
  if (fault_rng_ && plan && plan->any()) {
    auto& link = link_fault_[{m.from, m.to}];
    if (roll() < plan->drop) {
      ++fault_stats_.dropped;
      ++link.dropped;
      return;
    }
    if (!m.payload.empty() && roll() < plan->corrupt) {
      int flips = 1 + static_cast<int>(roll_u64() %
                                       static_cast<std::uint64_t>(
                                           std::max(plan->max_bit_flips, 1)));
      for (int f = 0; f < flips; ++f) {
        std::size_t pos = roll_u64() % m.payload.size();
        m.payload[pos] ^= static_cast<std::uint8_t>(1u << (roll_u64() % 8));
      }
      ++fault_stats_.corrupted;
      ++link.corrupted;
    }
    if (roll() < plan->reorder) {
      arrival += roll() * plan->max_extra_delay_us;
      ++fault_stats_.reordered;
      ++link.reordered;
    } else if (roll() < plan->delay) {
      arrival += roll() * plan->max_extra_delay_us;
      ++fault_stats_.delayed;
      ++link.delayed;
    }
    if (roll() < plan->duplicate) {
      double dup_arrival = arrival + roll() * (base_latency_us_ + 1.0);
      queue_.push(Pending{dup_arrival, next_seq_++, m, {}});
      ++fault_stats_.duplicated;
      ++link.duplicated;
    }
  }
  queue_.push(Pending{arrival, next_seq_++, std::move(m), {}});
}

void SimulatedNetwork::schedule_after(double delay_us, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("SimulatedNetwork: null timer");
  if (delay_us < 0) throw std::invalid_argument("SimulatedNetwork: negative delay");
  queue_.push(Pending{now_us_ + delay_us, next_seq_++, Message{}, std::move(fn)});
}

int SimulatedNetwork::step() {
  if (queue_.empty()) return -1;
  Pending p = queue_.top();
  queue_.pop();
  now_us_ = p.arrival_us;

  if (p.timer) {
    p.timer();
    return 0;
  }

  // The recipient may have been removed (crashed) after this message was
  // queued: record the failure like a send to an unknown endpoint instead
  // of throwing — the in-flight message is simply lost with the process.
  auto it = endpoints_.find(p.msg.to);
  if (it == endpoints_.end()) {
    ++fault_stats_.unknown_endpoint;
    ++link_fault_[{p.msg.from, p.msg.to}].unknown_endpoint;
    failures_.push_back({p.msg.from, p.msg.to, p.msg.type,
                         p.msg.payload.size(), "endpoint_gone"});
    return 0;
  }

  std::size_t bytes = p.msg.payload.size();
  auto& link = traffic_[{p.msg.from, p.msg.to}];
  link.messages += 1;
  link.bytes += bytes;
  total_.messages += 1;
  total_.bytes += bytes;
  audit_[p.msg.to].push_back({p.msg.from, p.msg.type, bytes, p.arrival_us});

  it->second(p.msg);
  return 1;
}

bool SimulatedNetwork::deliver_one() { return step() >= 0; }

std::size_t SimulatedNetwork::run() {
  std::size_t n = 0;
  int s;
  while ((s = step()) >= 0) n += static_cast<std::size_t>(s);
  return n;
}

TrafficStats SimulatedNetwork::stats(const std::string& from,
                                     const std::string& to) const {
  auto it = traffic_.find({from, to});
  return it == traffic_.end() ? TrafficStats{} : it->second;
}

TrafficStats SimulatedNetwork::total_stats() const { return total_; }

const std::vector<DeliveryRecord>& SimulatedNetwork::audit_log(
    const std::string& endpoint) const {
  auto it = audit_.find(endpoint);
  if (it == audit_.end())
    throw std::out_of_range("SimulatedNetwork: unknown endpoint " + endpoint);
  return it->second;
}

}  // namespace pisa::net
