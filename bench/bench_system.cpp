// Figure 6 reproduction: PISA end-to-end system evaluation.
//
// Paper (C = 100 channels × B = 600 blocks, n = 2048, GMP, i5-2400):
//   SU request preparation            ≈ 221 s   (≈ 11 s re-randomize-only)
//   SU request ciphertext             ≈ 29 MB
//   SDC request processing            ≈ 219 s
//   SDC → SU response                 ≈ 4.1 kb (one ciphertext)
//   PU update message                 ≈ 0.05 MB (C ciphertexts)
//   SDC update processing             ≈ 2.6 s
//
// Full-scale C×B = 60,000 entries would take ~45 min of wall clock per
// request on this single-core container, so we measure scaled grids,
// verify per-entry costs are scale-invariant (they are: every pipeline
// stage is a per-entry loop), and report measured-per-entry × 60,000
// extrapolations next to the paper's numbers. EXPERIMENTS.md records the
// comparison.
//
// The slot-packing sweep (PisaConfig::pack_slots, DESIGN.md §3.4) reruns
// the same workload at k ∈ {1, 2, 4} slots per ciphertext: PU-update
// encryption/folding and the SDC↔STP conversion link must shrink ~k× in
// both time and bytes, with identical grant decisions.
//
// The multi-SU throughput sweep (DESIGN.md §3.5) serves an identical burst
// of concurrent requests three ways — sequential baseline, concurrent but
// unbatched, and through the cross-request batching engine — and reports
// virtual-time requests/sec, latency percentiles, conversion round-trips
// and bytes per request.
//
// The shard × durability sweep (DESIGN.md §3.6) reruns an identical
// PU-fold burst + request serve at num_shards ∈ {1, 2, 4, 8}, durability
// off and on: per-shard fold throughput, wall-clock requests/sec (the
// WAL-overhead guard input — scripts/check_perf_regression.py fails the
// run when WAL-on costs more than 15% of WAL-off requests/sec) and the
// crash-recovery rebuild time measured by the engine itself.
//
// The TCP closed-loop sweep (DESIGN.md §3.7) drives the real epoll
// transport: an RpcServer behind a loopback listener, an RpcClient
// multiplexing 64 / 256 / 1024 concurrent SU sessions over one pipelined
// connection, requests pre-encrypted off the clock. Wall-clock req/s,
// p50/p99 sojourn times and wire bytes land in the same throughput[]
// table with transport="tcp". `--transport=tcp` runs only this sweep —
// the socket load-generator mode.
//
// The denial-mix sweep (DESIGN.md §3.8) serves grant:deny mixes of
// {80:20, 50:50, 20:80} with the encrypted cuckoo denial prefilter off and
// on, over both transports: with the filter on, requests that hit a
// confirmed-exhausted block come back as one 32-byte FastDenyMsg instead
// of running the blinded-conversion pipeline, and the on/off pair at the
// 80%-deny mix feeds the ≥2x fast-deny guard.
//
// The scenario sweep (DESIGN.md §3.9) runs the time-stepped dynamic-
// spectrum schedule — SU mobility, channel churn, PU relocation and
// power-toggles, license expiry/revocation — twice per fleet size over the
// same seed: full-column PU updates vs incremental deltas. The delta rows
// run the PU offline phase first (precomputed r^n pools, §VI-A's
// pooled-preparation argument applied to the PU side); the full-column
// rows stay un-pooled — they are the pre-§3.9 baseline. Per-send update
// cost, ticks/sec, sustained req/s, delta cells/tick and WAL bytes/tick
// land in scenario_sweep[]; the full/delta pair feeds the ≥3x incremental
// speedup floor.
//
// The PIR sweep (DESIGN.md §3.10) pits the XOR multi-server PIR query
// path against the blinded-conversion pipeline on the same seeded world at
// the scaling[] grid sizes, over both transports: per-request wall-clock
// latency, wire bytes per request (framing included on tcp) and the
// replica-side XOR scan cost, with a decisions_match flag asserting the
// two privacy mechanisms reach identical verdicts. The within-run
// Paillier/PIR latency pair feeds the ≥10x PIR floor in
// scripts/check_perf_regression.py.
//
// `--quick` runs the n=1024 scaling rows, the pack sweep, a two-point
// thread sweep, the {2, 8}-SU throughput sweep, the 64-session TCP row,
// the full shard × durability grid with a shortened per-row burst, a
// 40-tick 2-SU scenario pair, and one sim-transport PIR row at the small
// grid (no 4-lane row, no 16-SU fleet, no 256/1024-session TCP rows, no
// n=2048 production row, no 120-tick 4-SU scenario rows, no tcp or
// 10×60 PIR rows) — the CI perf-smoke configuration that
// scripts/check_perf_regression.py compares against the committed
// BENCH_system.json.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bench_json.hpp"
#include "core/protocol.hpp"
#include "core/scenario_engine.hpp"
#include "crypto/chacha_rng.hpp"
#include "exec/thread_pool.hpp"
#include "net/rpc_server.hpp"
#include "radio/pathloss.hpp"
#include "watch/matrices.hpp"
#include "watch/plain_watch.hpp"

// Snapshot attribution (bench/CMakeLists.txt injects these at configure
// time): committed BENCH_system.json records which source revision and
// compiler flags produced it, so numbers stay comparable across PRs.
#ifndef PISA_GIT_REV
#define PISA_GIT_REV "unknown"
#endif
#ifndef PISA_BENCH_BUILD_TYPE
#define PISA_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef PISA_BENCH_FLAGS
#define PISA_BENCH_FLAGS ""
#endif

namespace {

using namespace pisa;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Row {
  std::size_t paillier_bits;
  std::size_t channels, blocks;
  std::size_t num_threads = 1;
  std::size_t pack_slots = 1;
  double prep_fresh_ms = 0, prep_pooled_ms = 0, prep_hybrid_ms = 0;
  std::size_t request_bytes = 0;
  double sdc_phase1_ms = 0, stp_convert_ms = 0, stp_convert_pooled_ms = 0,
         sdc_phase2_ms = 0;
  std::size_t convert_bytes = 0;        // SDC → STP Ṽ (Figure 5 step 5)
  std::size_t convert_reply_bytes = 0;  // STP → SDC X̃ (Figure 5 step 8)
  std::size_t response_bytes = 0;
  double pu_encrypt_ms = 0, pu_apply_ms = 0, pu_recompute_ms = 0;
  std::size_t pu_update_bytes = 0;

  std::size_t entries() const { return channels * blocks; }
  double total_processing_ms() const {
    return sdc_phase1_ms + sdc_phase2_ms;  // paper's "processing" is SDC-side
  }
  /// End-to-end latency of one fresh request: SU prep + SDC blind + STP
  /// convert + SDC finish (network transfer excluded — bytes are reported
  /// separately). The perf-regression guard watches this number.
  double su_request_total_ms() const {
    return prep_fresh_ms + sdc_phase1_ms + stp_convert_ms + sdc_phase2_ms;
  }
};

Row measure(std::size_t paillier_bits, std::size_t channels, std::size_t rows,
            std::size_t cols, std::uint64_t seed, std::size_t num_threads = 1,
            std::size_t pack_slots = 1) {
  core::PisaConfig cfg;
  cfg.watch.grid_rows = rows;
  cfg.watch.grid_cols = cols;
  cfg.watch.block_size_m = 100.0;
  cfg.watch.channels = channels;
  cfg.paillier_bits = paillier_bits;
  cfg.rsa_bits = paillier_bits / 2;  // license key strictly below the slot width
  cfg.blind_bits = 128;
  cfg.mr_rounds = 12;
  cfg.num_threads = num_threads;
  cfg.pack_slots = pack_slots;

  crypto::ChaChaRng rng{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}}};
  core::PisaSystem system{cfg, sites, model, rng};
  auto& su = system.add_su(1);
  // Direct begin/finish_request calls below bypass the network key
  // directory, so prime the SDC with the SU key explicitly.
  system.sdc().register_su_key(1, su.public_key());

  Row row{paillier_bits, channels, rows * cols, num_threads, pack_slots};

  // --- PU update path (Figure 4).
  auto& pu = system.pu(0);
  watch::PuTuning tuning{radio::ChannelId{0}, 1e-6};
  auto t0 = Clock::now();
  auto update = pu.make_update(tuning);
  row.pu_encrypt_ms = ms_since(t0);
  row.pu_update_bytes =
      update.encode(system.stp().group_key().ciphertext_bytes()).size();
  t0 = Clock::now();
  system.sdc().handle_pu_update(update);
  row.pu_apply_ms = ms_since(t0);
  t0 = Clock::now();
  system.sdc().recompute_budget();
  row.pu_recompute_ms = ms_since(t0);

  // --- SU request path (Figure 5).
  watch::SuRequest request{1, radio::BlockId{static_cast<std::uint32_t>(
                                  row.blocks - 1)},
                           std::vector<double>(channels, 100.0)};
  auto f = system.build_f(request);

  t0 = Clock::now();
  auto msg = su.prepare_request(f, 1001);
  row.prep_fresh_ms = ms_since(t0);
  row.request_bytes =
      msg.encode(system.stp().group_key().ciphertext_bytes()).size();

  su.precompute_randomizers(f.size());
  t0 = Clock::now();
  auto msg2 = su.prepare_request(f, 1002, core::PrepMode::kPooled);
  row.prep_pooled_ms = ms_since(t0);

  // Hybrid = the paper's description: fresh encryptions only for the
  // entries within d^c of a PU site, pooled re-randomization for the
  // all-zero bulk.
  su.precompute_randomizers(f.size());
  t0 = Clock::now();
  auto msg3 = su.prepare_request(f, 1003, 0,
                                 static_cast<std::uint32_t>(f.blocks()),
                                 core::PrepMode::kHybrid);
  row.prep_hybrid_ms = ms_since(t0);

  t0 = Clock::now();
  auto conv = system.sdc().begin_request(msg);
  row.sdc_phase1_ms = ms_since(t0);
  row.convert_bytes =
      conv.encode(system.stp().group_key().ciphertext_bytes()).size();

  t0 = Clock::now();
  auto xresp = system.stp().convert(conv);
  row.stp_convert_ms = ms_since(t0);
  row.convert_reply_bytes =
      xresp.encode(su.public_key().ciphertext_bytes()).size();

  t0 = Clock::now();
  auto resp = system.sdc().finish_request(xresp);
  row.sdc_phase2_ms = ms_since(t0);
  row.response_bytes = resp.encode(su.public_key().ciphertext_bytes()).size();

  // STP ablation: precomputed per-SU randomizer pools for the conversion.
  auto conv2 = system.sdc().begin_request(msg2);
  system.stp().precompute_su_randomizers(1, conv2.v.size());
  t0 = Clock::now();
  auto xresp2 = system.stp().convert(conv2);
  row.stp_convert_pooled_ms = ms_since(t0);
  (void)system.sdc().finish_request(xresp2);

  // Consume the third prepared request so the hybrid path is exercised
  // end to end as well.
  auto conv3 = system.sdc().begin_request(msg3);
  (void)system.sdc().finish_request(system.stp().convert(conv3));
  return row;
}

void print_row(const Row& r) {
  std::printf(
      "n=%4zu C=%3zu B=%4zu (%5zu entries) | prep %8.1f ms (pooled %7.1f) "
      "req %8.2f MB | SDC %8.1f ms STP %8.1f ms | resp %5zu B | PU enc %6.1f "
      "ms, msg %6.2f kB, apply %6.1f ms, recompute %8.1f ms\n",
      r.paillier_bits, r.channels, r.blocks, r.entries(), r.prep_fresh_ms,
      r.prep_pooled_ms, static_cast<double>(r.request_bytes) / 1e6,
      r.total_processing_ms(), r.stp_convert_ms, r.response_bytes,
      r.pu_encrypt_ms, static_cast<double>(r.pu_update_bytes) / 1e3,
      r.pu_apply_ms, r.pu_recompute_ms);
}

void print_extrapolation(const Row& r) {
  // Everything scales linearly in C×B except the PU paths, which scale in C.
  const double k = 60000.0 / static_cast<double>(r.entries());
  const double kc = 100.0 / static_cast<double>(r.channels);
  std::printf("\n--- Extrapolation to the paper's Table I scale "
              "(C=100, B=600, n=%zu) vs paper (n=2048) ---\n",
              r.paillier_bits);
  std::printf("  %-34s %10.1f s   (paper ~221 s)\n",
              "SU request preparation (fresh):", r.prep_fresh_ms * k / 1e3);
  std::printf("  %-34s %10.1f s   (paper ~221 s incl. zero-entry reuse)\n",
              "SU request preparation (hybrid):", r.prep_hybrid_ms * k / 1e3);
  std::printf("  %-34s %10.1f s   (paper ~11 s)\n",
              "SU request preparation (pooled):", r.prep_pooled_ms * k / 1e3);
  std::printf("  %-34s %10.1f MB  (paper ~29 MB)\n",
              "SU request size:", static_cast<double>(r.request_bytes) * k / 1e6);
  std::printf("  %-34s %10.1f s   (paper ~219 s)\n",
              "SDC request processing:", r.total_processing_ms() * k / 1e3);
  std::printf("  %-34s %10.1f s   (paper: not reported)\n",
              "STP key conversion:", r.stp_convert_ms * k / 1e3);
  std::printf("  %-34s %10.1f s   (ablation: per-SU randomizer pools)\n",
              "STP key conversion (pooled):", r.stp_convert_pooled_ms * k / 1e3);
  std::printf("  %-34s %10.2f kb  (paper ~4.1 kb)\n", "SDC -> SU response:",
              static_cast<double>(r.response_bytes) * 8.0 / 1e3);
  std::printf("  %-34s %10.3f MB  (paper ~0.05 MB)\n", "PU update message:",
              static_cast<double>(r.pu_update_bytes) * kc / 1e6);
  std::printf("  %-34s %10.2f s   (paper ~2.6 s)\n",
              "PU update processing (recompute):",
              (r.pu_encrypt_ms + r.pu_recompute_ms) * kc / 1e3);
  std::printf("  %-34s %10.3f s   (ablation: incremental path)\n",
              "PU update processing (incremental):",
              (r.pu_encrypt_ms + r.pu_apply_ms) * kc / 1e3);
}

double speedup(double base_ms, double ms) { return ms > 0 ? base_ms / ms : 0; }

void print_sweep_row(const Row& base, const Row& r) {
  std::printf("  threads=%zu | prep %8.1f ms (%.2fx) pooled %7.1f ms (%.2fx) | "
              "SDC p1 %8.1f ms (%.2fx) p2 %6.1f ms (%.2fx) | STP %8.1f ms "
              "(%.2fx) | PU apply %6.1f ms (%.2fx)\n",
              r.num_threads, r.prep_fresh_ms,
              speedup(base.prep_fresh_ms, r.prep_fresh_ms), r.prep_pooled_ms,
              speedup(base.prep_pooled_ms, r.prep_pooled_ms), r.sdc_phase1_ms,
              speedup(base.sdc_phase1_ms, r.sdc_phase1_ms), r.sdc_phase2_ms,
              speedup(base.sdc_phase2_ms, r.sdc_phase2_ms), r.stp_convert_ms,
              speedup(base.stp_convert_ms, r.stp_convert_ms), r.pu_apply_ms,
              speedup(base.pu_apply_ms, r.pu_apply_ms));
}

// ---- Multi-SU throughput (DESIGN.md §3.5) --------------------------------
//
// The same burst of concurrent SU requests served three ways:
//   sequential            one request fully drains before the next starts —
//                         the paper's one-at-a-time baseline
//   concurrent_unbatched  all requests in flight at once, but one
//                         ConvertRequestMsg round-trip per SU
//   batched               the cross-request engine: blinded Ṽ entries
//                         coalesced into one ConvertBatchMsg, always-warm
//                         per-SU STP pools, request-phase pipelining
// requests/sec comes from the virtual-time makespan, so the comparison
// isolates protocol round-trips from host load and stays deterministic for
// the CI perf guard.

enum class ThroughputMode { kSequential, kConcurrentUnbatched, kBatched };

const char* mode_name(ThroughputMode m) {
  switch (m) {
    case ThroughputMode::kSequential: return "sequential";
    case ThroughputMode::kConcurrentUnbatched: return "concurrent_unbatched";
    case ThroughputMode::kBatched: return "batched";
  }
  return "?";
}

struct ThroughputRow {
  std::string transport = "sim";  // "sim" = virtual-time SimulatedNetwork,
                                  // "tcp" = real epoll sockets (wall clock)
  std::string mode;
  std::size_t concurrency = 0;
  std::size_t entries_per_request = 0;
  double makespan_us = 0;        // sim: virtual time; tcp: wall clock
  double requests_per_sec = 0;   // concurrency / makespan
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double p99_latency_us = 0;
  std::size_t convert_round_trips = 0;  // SDC→STP conversion messages
  double bytes_per_request = 0;         // Σ all four links / concurrency
  double wire_bytes_per_request = 0;    // tcp only: TCP payload bytes, both
                                        // directions, from transport stats
  double serve_wall_ms = 0;             // host wall clock of the drain
};

double percentile(const std::vector<double>& sorted, std::size_t pct) {
  return sorted[(sorted.size() * pct + 99) / 100 - 1];
}

ThroughputRow measure_throughput(ThroughputMode mode, std::size_t concurrency,
                                 std::uint64_t seed) {
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 2;
  cfg.watch.grid_cols = 3;
  cfg.watch.block_size_m = 100.0;
  cfg.watch.channels = 4;
  cfg.paillier_bits = 1024;
  cfg.rsa_bits = 512;
  cfg.blind_bits = 128;
  cfg.mr_rounds = 12;
  const std::size_t blocks = cfg.watch.grid_rows * cfg.watch.grid_cols;
  const std::size_t entries = cfg.watch.channels * blocks;
  if (mode == ThroughputMode::kBatched) {
    cfg.convert_batch_max = 4096;       // coalesce the whole burst
    cfg.convert_batch_linger_us = 200.0;
    cfg.stp_pool_target = entries;      // always-warm: one full request deep
  }

  crypto::ChaChaRng rng{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}}};
  core::PisaSystem system{cfg, sites, model, rng};
  for (std::size_t i = 0; i < concurrency; ++i) {
    auto id = static_cast<std::uint32_t>(i + 1);
    auto& su = system.add_su(id);
    // Key distribution is an offline registration step; keep it off the
    // timed request path.
    system.sdc().register_su_key(id, su.public_key());
  }
  system.pu_update(0, watch::PuTuning{radio::ChannelId{0}, 1e-6});

  std::vector<watch::SuRequest> requests;
  requests.reserve(concurrency);
  for (std::size_t i = 0; i < concurrency; ++i)
    requests.push_back(
        {static_cast<std::uint32_t>(i + 1),
         radio::BlockId{static_cast<std::uint32_t>(i % blocks)},
         std::vector<double>(cfg.watch.channels, 100.0)});

  ThroughputRow row;
  row.mode = mode_name(mode);
  row.concurrency = concurrency;
  row.entries_per_request = entries;

  std::vector<double> latencies;
  latencies.reserve(concurrency);
  std::size_t total_bytes = 0;
  if (mode == ThroughputMode::kSequential) {
    auto t0 = Clock::now();
    for (const auto& req : requests) {
      auto out = system.su_request(req);
      if (!out.completed())
        std::fprintf(stderr, "warning: sequential request failed: %s\n",
                     out.failure.c_str());
      latencies.push_back(out.latency_us);
      row.makespan_us += out.latency_us;  // strictly serial occupancy
      total_bytes += out.request_bytes + out.convert_bytes +
                     out.convert_reply_bytes + out.response_bytes;
    }
    row.serve_wall_ms = ms_since(t0);
    row.convert_round_trips = concurrency;  // one ConvertRequestMsg each
  } else {
    core::PisaSystem::MultiRequestStats stats;
    auto outcomes =
        system.su_request_many(requests, core::PrepMode::kFresh, &stats);
    for (const auto& out : outcomes) {
      if (!out.completed())
        std::fprintf(stderr, "warning: concurrent request failed: %s\n",
                     out.failure.c_str());
      latencies.push_back(out.latency_us);
    }
    row.makespan_us = stats.makespan_us;
    row.serve_wall_ms = stats.serve_wall_ms;
    row.convert_round_trips = stats.convert_msgs;
    total_bytes = stats.request_bytes + stats.convert_bytes +
                  stats.convert_reply_bytes + stats.response_bytes;
  }
  std::sort(latencies.begin(), latencies.end());
  row.p50_latency_us = latencies[(latencies.size() - 1) / 2];
  row.p95_latency_us = percentile(latencies, 95);
  row.p99_latency_us = percentile(latencies, 99);
  row.requests_per_sec = row.makespan_us > 0
                             ? static_cast<double>(concurrency) /
                                   row.makespan_us * 1e6
                             : 0;
  row.bytes_per_request =
      static_cast<double>(total_bytes) / static_cast<double>(concurrency);
  return row;
}

void print_throughput_row(const ThroughputRow& r) {
  std::printf("  %-22s x%-2zu | %8.1f req/s | p50 %8.0f us p95 %8.0f us | "
              "%2zu round-trip%s | %7.1f kB/req | wall %7.1f ms\n",
              r.mode.c_str(), r.concurrency, r.requests_per_sec,
              r.p50_latency_us, r.p95_latency_us, r.convert_round_trips,
              r.convert_round_trips == 1 ? " " : "s", r.bytes_per_request / 1e3,
              r.serve_wall_ms);
}

// ---- Socket-path throughput (ISSUE 7 / DESIGN.md §3.7) -------------------
//
// The closed-loop load generator for the real epoll transport: one
// RpcServer (SDC + STP behind a TCP listener), one RpcClient multiplexing
// every SU session over a single pipelined connection. All requests are
// prepared (encrypted) off the clock, then the whole fleet is poured down
// the socket at once — each session has exactly one request in flight and
// waits for its response, which is the closed-loop steady state at
// concurrency N. Unlike the virtual-time rows above, every number here is
// wall clock measured across real sockets: framing, CRC sealing, epoll
// wakeups, write-queue draining and the dispatch lane are all on the
// timed path. Per-request completion timestamps come from the client's
// response hook (dispatch-thread accurate), so p50/p99 are sojourn times
// from burst start. wire_bytes_per_request is the transport's own byte
// accounting (both directions) divided by the fleet size.

ThroughputRow measure_tcp_throughput(std::size_t concurrency,
                                     std::uint64_t seed) {
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 2;
  cfg.watch.grid_cols = 2;
  cfg.watch.block_size_m = 400.0;
  cfg.watch.channels = 2;
  cfg.paillier_bits = 512;
  cfg.rsa_bits = 384;  // the RSA floor: rsa_generate needs >= 384 bits
  cfg.blind_bits = 16;
  cfg.mr_rounds = 6;
  const std::size_t blocks = cfg.watch.grid_rows * cfg.watch.grid_cols;
  const std::size_t entries = cfg.watch.channels * blocks;

  crypto::ChaChaRng rng{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}}};
  const double d_c_m = watch::exclusion_radius_m(cfg.watch, model);

  rpc::RpcServer server{cfg, rng};
  rpc::RpcClient client{cfg, server.group_key(), "127.0.0.1", server.port(),
                        rng};
  for (const auto& site : sites) client.add_pu(site);
  // Fleet setup (keygen + STP registration) is offline in the paper; keep
  // it off the clock like the sim rows keep register_su_key off theirs.
  for (std::size_t i = 0; i < concurrency; ++i)
    client.add_su(static_cast<std::uint32_t>(i + 1));
  client.pu_update(0, watch::PuTuning{radio::ChannelId{0}, 1e-6});

  // Encrypt every session's request off the clock; the timed section is
  // purely the serving path (socket + SDC/STP pipeline).
  std::vector<rpc::RpcClient::PreparedRequest> prepared;
  prepared.reserve(concurrency);
  for (std::size_t i = 0; i < concurrency; ++i) {
    watch::SuRequest req{
        static_cast<std::uint32_t>(i + 1),
        radio::BlockId{static_cast<std::uint32_t>(i % blocks)},
        std::vector<double>(cfg.watch.channels, i % 2 == 0 ? 100.0 : 1e-4)};
    auto f = watch::build_su_f_matrix(cfg.watch, sites, req.block,
                                      req.eirp_mw_per_channel, model, d_c_m);
    prepared.push_back(client.prepare_request(req.su_id, f));
  }

  ThroughputRow row;
  row.transport = "tcp";
  row.mode = "closed_loop";
  row.concurrency = concurrency;
  row.entries_per_request = entries;

  std::mutex done_mu;
  std::vector<double> done_us(concurrency, 0);
  Clock::time_point t0{};
  client.set_response_hook([&](std::uint64_t request_id) {
    double us = std::chrono::duration<double, std::micro>(Clock::now() - t0)
                    .count();
    std::lock_guard<std::mutex> lk(done_mu);
    done_us[request_id - prepared.front().request_id] = us;
  });

  auto wire0_c = client.transport().stats();
  t0 = Clock::now();
  for (const auto& p : prepared) client.submit(p);
  for (const auto& p : prepared)
    if (!client.wait_response(p.request_id, nullptr, 600000))
      std::fprintf(stderr, "warning: tcp request %llu timed out\n",
                   static_cast<unsigned long long>(p.request_id));
  row.serve_wall_ms = ms_since(t0);
  auto wire1_c = client.transport().stats();

  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lk(done_mu);
    latencies = done_us;
  }
  std::sort(latencies.begin(), latencies.end());
  row.makespan_us = latencies.back();
  row.p50_latency_us = latencies[(latencies.size() - 1) / 2];
  row.p95_latency_us = percentile(latencies, 95);
  row.p99_latency_us = percentile(latencies, 99);
  row.requests_per_sec =
      row.makespan_us > 0
          ? static_cast<double>(concurrency) / row.makespan_us * 1e6
          : 0;
  std::uint64_t wire_bytes = (wire1_c.bytes_sent - wire0_c.bytes_sent) +
                             (wire1_c.bytes_received - wire0_c.bytes_received);
  row.wire_bytes_per_request =
      static_cast<double>(wire_bytes) / static_cast<double>(concurrency);
  // On the socket path the bytes that matter are the ones on the wire;
  // report them in the legacy column too so both fields read sensibly.
  row.bytes_per_request = row.wire_bytes_per_request;
  return row;
}

void print_tcp_throughput_row(const ThroughputRow& r) {
  std::printf("  tcp %-18s x%-4zu | %8.1f req/s | p50 %8.0f us p99 %8.0f us "
              "| %7.2f kB/req wire | wall %7.1f ms\n",
              r.mode.c_str(), r.concurrency, r.requests_per_sec,
              r.p50_latency_us, r.p99_latency_us,
              r.wire_bytes_per_request / 1e3, r.serve_wall_ms);
}

// ---- Shard × durability sweep (DESIGN.md §3.6) ---------------------------
//
// The same seeded workload — a PU-fold burst followed by sequential SU
// requests — at every shard count, durability off and on. The fold burst is
// the path the WAL sits on (journal → retract → add per shard), so
// pu_fold_ms carries the journaling cost; requests_per_sec is wall-clock
// (not virtual time) so the durability overhead on the serve path is a real
// measurement, and the regression guard compares the on/off pair from the
// same run — host speed cancels out. recovery_ms is the engine's own timing
// of the snapshot-load + WAL-replay rebuild after a crash.

struct ShardRow {
  std::size_t num_shards = 1;
  bool durability = false;
  std::size_t channels = 0, blocks = 0;
  std::size_t pu_updates = 0;
  double pu_fold_ms = 0;                    // mean fold per update
  double pu_fold_rows_per_sec_per_shard = 0;  // group-rows folded /s /shard
  double requests_per_sec = 0;              // wall-clock sequential serve
  double serve_wall_ms = 0;
  double recovery_ms = 0;                   // 0 when durability is off
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t snapshots_written = 0;
};

ShardRow measure_shard(std::size_t num_shards, bool durable, bool quick,
                       std::uint64_t seed) {
  namespace fs = std::filesystem;
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 2;
  cfg.watch.grid_cols = 3;
  cfg.watch.block_size_m = 100.0;
  cfg.watch.channels = 8;  // 8 channel groups at pack_slots = 1: every shard
                           // count in the sweep partitions them evenly
  cfg.paillier_bits = 768;
  cfg.rsa_bits = 384;
  cfg.blind_bits = 128;
  cfg.mr_rounds = 12;
  cfg.num_shards = num_shards;
  cfg.num_threads = num_shards;  // one fold lane per shard
  fs::path dir;
  if (durable) {
    dir = fs::temp_directory_path() /
          ("pisa_bench_shard_" + std::to_string(::getpid()) + "_" +
           std::to_string(num_shards));
    fs::remove_all(dir);
    fs::create_directories(dir);
    cfg.durability.enabled = true;
    cfg.durability.dir = dir.string();
    cfg.durability.snapshot_every = 4;  // compaction triggers mid-burst
    cfg.durability.serial_reserve = 16;
  }

  crypto::ChaChaRng rng{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}},
                                   {1, radio::BlockId{4}}};
  core::PisaSystem system{cfg, sites, model, rng};
  auto& su = system.add_su(1);
  system.sdc().register_su_key(1, su.public_key());

  ShardRow row;
  row.num_shards = num_shards;
  row.durability = durable;
  row.channels = cfg.watch.channels;
  row.blocks = cfg.watch.grid_rows * cfg.watch.grid_cols;
  row.pu_updates = quick ? 6 : 12;

  // PU encryption happens client-side and off the clock; the timed section
  // is exactly the sharded fold.
  std::vector<core::PuUpdateMsg> updates;
  updates.reserve(row.pu_updates);
  for (std::size_t i = 0; i < row.pu_updates; ++i) {
    watch::PuTuning tuning{
        radio::ChannelId{static_cast<std::uint32_t>(i % cfg.watch.channels)},
        1e-6 * static_cast<double>(i % 5 + 1)};
    updates.push_back(system.pu(i % sites.size()).make_update(tuning));
  }
  auto t0 = Clock::now();
  for (const auto& u : updates) system.sdc().handle_pu_update(u);
  double fold_ms = ms_since(t0);
  row.pu_fold_ms = fold_ms / static_cast<double>(row.pu_updates);
  row.pu_fold_rows_per_sec_per_shard =
      fold_ms > 0 ? static_cast<double>(row.pu_updates * row.channels) * 1e3 /
                        fold_ms / static_cast<double>(num_shards)
                  : 0;

  const std::size_t n_req = quick ? 2 : 4;
  watch::SuRequest req{1, radio::BlockId{2},
                       std::vector<double>(cfg.watch.channels, 100.0)};
  // One untimed warm-up request first: lazy pools, page faults and first-use
  // allocations land outside the measurement window, keeping the on/off
  // requests/sec pair (the 15% guard input) clear of cold-start noise.
  (void)system.su_request(req);
  t0 = Clock::now();
  for (std::size_t i = 0; i < n_req; ++i) {
    auto out = system.su_request(req);
    if (!out.completed())
      std::fprintf(stderr, "warning: shard-sweep request failed: %s\n",
                   out.failure.c_str());
  }
  row.serve_wall_ms = ms_since(t0);
  row.requests_per_sec =
      row.serve_wall_ms > 0
          ? static_cast<double>(n_req) * 1e3 / row.serve_wall_ms
          : 0;

  row.wal_records = system.sdc().state().wal_records();
  row.wal_bytes = system.sdc().state().wal_bytes();
  row.snapshots_written = system.sdc().state().snapshots_written();

  // Crash and restart: recovery_ms is the engine's own measurement of the
  // snapshot-load + WAL-replay rebuild (zero with durability off — the
  // restarted SDC has nothing to recover from).
  system.crash_sdc();
  auto& sdc = system.restart_sdc();
  row.recovery_ms = sdc.state().recovery_stats().recover_ms;

  if (durable) fs::remove_all(dir);
  return row;
}

void print_shard_row(const ShardRow& r) {
  std::printf(
      "  shards=%zu %-3s | fold %6.1f ms/update (%6.0f rows/s/shard) | "
      "%5.2f req/s | recover %6.1f ms | wal %3llu rec %6.1f kB, %llu "
      "snapshot%s\n",
      r.num_shards, r.durability ? "wal" : "off", r.pu_fold_ms,
      r.pu_fold_rows_per_sec_per_shard, r.requests_per_sec, r.recovery_ms,
      static_cast<unsigned long long>(r.wal_records),
      static_cast<double>(r.wal_bytes) / 1e3,
      static_cast<unsigned long long>(r.snapshots_written),
      r.snapshots_written == 1 ? "" : "s");
}

// ---- Denial-mix sweep (DESIGN.md §3.8) -----------------------------------
//
// The same grant:deny request mix served with the encrypted cuckoo
// prefilter off and on, over the virtual-time SimulatedNetwork and the real
// TCP transport. The geometry keeps exhaustion block-local (d^c ≈ 527 m,
// 1000 m blocks): three PUs stack onto (channel 0, block 0) until its
// budget is provably exhausted, deny-mix requests disclose [0,1) and hit
// the confirmed-exhausted set, grant-mix requests disclose the clean
// [3,4). With the filter on every deny is a one-round 32-byte FastDenyMsg
// — no Ṽ blinding, no STP conversion — so wall-clock requests/sec at a
// deny-heavy mix is the headline number: the within-run on/off pair at
// 80% deny feeds the ≥2x fast-deny guard in
// scripts/check_perf_regression.py. stp_decryptions counts conversion
// entries + probe slots the STP opened during the timed burst; per denied
// request it must sit at ~0 with the filter on (probes amortize at
// PU-update time, off the serve path). decisions_match asserts every
// decision equals the constructed mix — the filter never flips a verdict.

struct DenialRow {
  std::string transport = "sim";
  std::size_t deny_pct = 0;
  bool filter = false;
  std::size_t requests = 0;
  std::size_t grants = 0;
  std::size_t fast_denials = 0;
  std::size_t full_denials = 0;
  double serve_wall_ms = 0;
  double requests_per_sec = 0;          // wall clock over the timed burst
  std::uint64_t stp_decryptions = 0;    // conversion entries + probe slots
  double stp_decryptions_per_denied = 0;
  double wire_bytes_per_request = 0;
  std::uint64_t prefilter_false_positives = 0;
  bool decisions_match = true;
};

core::PisaConfig denial_config(bool filter) {
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 1;
  cfg.watch.grid_cols = 4;
  cfg.watch.block_size_m = 1000.0;
  cfg.watch.channels = 2;
  cfg.watch.pu_min_signal_dbm = -40.0;  // d^c ≈ 527 m < one block: exhaustion
  cfg.watch.su_max_eirp_dbm = 20.0;     // stays local to the PU-site block
  cfg.paillier_bits = 512;
  cfg.rsa_bits = 384;
  cfg.blind_bits = 48;
  cfg.mr_rounds = 8;
  cfg.denial_filter.enabled = filter;
  return cfg;
}

std::vector<watch::PuSite> denial_sites() {
  return {{0, radio::BlockId{0}}, {1, radio::BlockId{0}},
          {2, radio::BlockId{0}}};
}

bool deny_slot(std::size_t i, std::size_t deny_pct) {
  return i % 10 < deny_pct / 10;  // deterministic interleave: 80% = 8-in-10
}

void finish_denial_row(DenialRow& row, std::uint64_t decryptions,
                       std::uint64_t entries_per_grant,
                       std::uint64_t wire_bytes) {
  row.requests_per_sec =
      row.serve_wall_ms > 0
          ? static_cast<double>(row.requests) * 1e3 / row.serve_wall_ms
          : 0;
  row.stp_decryptions = decryptions;
  const std::uint64_t grant_cost =
      static_cast<std::uint64_t>(row.grants) * entries_per_grant;
  const std::size_t denied = row.fast_denials + row.full_denials;
  row.stp_decryptions_per_denied =
      denied > 0 && decryptions > grant_cost
          ? static_cast<double>(decryptions - grant_cost) /
                static_cast<double>(denied)
          : 0;
  row.wire_bytes_per_request =
      static_cast<double>(wire_bytes) / static_cast<double>(row.requests);
}

DenialRow measure_denial_sim(std::size_t deny_pct, bool filter, bool quick,
                             std::uint64_t seed) {
  auto cfg = denial_config(filter);
  crypto::ChaChaRng rng{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  core::PisaSystem system{cfg, denial_sites(), model, rng};
  system.add_su(1);
  // Exhaust (channel 0, block 0): the folds invalidate, the probe rounds
  // confirm — all before the timed burst, like PU churn in deployment.
  for (std::uint32_t pu : {0u, 1u, 2u})
    system.pu_update(pu, watch::PuTuning{radio::ChannelId{0}, 1e-6});

  watch::SuRequest deny_req{1, radio::BlockId{0},
                            std::vector<double>(cfg.watch.channels, 1e-4)};
  watch::SuRequest grant_req{1, radio::BlockId{3},
                             std::vector<double>(cfg.watch.channels, 1e-4)};

  DenialRow row;
  row.deny_pct = deny_pct;
  row.filter = filter;
  row.requests = quick ? 10 : 30;

  // Untimed warm-up grant: cold-start allocations stay off the clock, and
  // its conversion-entry count calibrates the per-grant decryption cost.
  std::uint64_t entries0 = system.stp().entries_converted();
  auto warm = system.su_request(grant_req, std::make_pair(3u, 4u));
  if (!warm.completed() || !warm.granted) row.decisions_match = false;
  const std::uint64_t entries_per_grant =
      system.stp().entries_converted() - entries0;

  const std::uint64_t dec0 =
      system.stp().entries_converted() + system.stp().probe_slots_signed();
  const std::uint64_t fp0 = system.sdc().stats().prefilter_false_positives;
  std::uint64_t wire_bytes = 0;
  auto t0 = Clock::now();
  for (std::size_t i = 0; i < row.requests; ++i) {
    const bool deny = deny_slot(i, deny_pct);
    auto out = deny ? system.su_request(deny_req, std::make_pair(0u, 1u))
                    : system.su_request(grant_req, std::make_pair(3u, 4u));
    if (!out.completed() || out.granted == deny) row.decisions_match = false;
    if (out.granted)
      ++row.grants;
    else if (out.fast_denied)
      ++row.fast_denials;
    else
      ++row.full_denials;
    wire_bytes += out.request_bytes + out.convert_bytes +
                  out.convert_reply_bytes + out.response_bytes;
  }
  row.serve_wall_ms = ms_since(t0);
  const std::uint64_t decryptions = system.stp().entries_converted() +
                                    system.stp().probe_slots_signed() - dec0;
  row.prefilter_false_positives =
      system.sdc().stats().prefilter_false_positives - fp0;
  finish_denial_row(row, decryptions, entries_per_grant, wire_bytes);
  return row;
}

DenialRow measure_denial_tcp(std::size_t deny_pct, bool filter, bool quick,
                             std::uint64_t seed) {
  auto cfg = denial_config(filter);
  crypto::ChaChaRng rng{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  auto sites = denial_sites();
  const double d_c_m = watch::exclusion_radius_m(cfg.watch, model);

  rpc::RpcServer server{cfg, rng};
  rpc::RpcClient client{cfg, server.group_key(), "127.0.0.1", server.port(),
                        rng};
  for (const auto& site : sites) client.add_pu(site);

  DenialRow row;
  row.transport = "tcp";
  row.deny_pct = deny_pct;
  row.filter = filter;
  row.requests = quick ? 10 : 30;

  // One SU session per request, plus a warm-up session; registration is
  // offline setup, off the clock like every other tcp row.
  for (std::size_t i = 0; i <= row.requests; ++i)
    client.add_su(static_cast<std::uint32_t>(i + 1));
  for (std::uint32_t pu : {0u, 1u, 2u})
    client.pu_update(pu, watch::PuTuning{radio::ChannelId{0}, 1e-6});

  const std::vector<double> eirp(cfg.watch.channels, 1e-4);
  auto make_f = [&](const watch::SuRequest& req) {
    return watch::build_su_f_matrix(cfg.watch, sites, req.block,
                                    req.eirp_mw_per_channel, model, d_c_m);
  };

  // Warm-up grant on its own session: FIFO ordering guarantees the PU
  // folds (and their in-process probe rounds, filter on) fully drain
  // before the timed burst; its entry count calibrates per-grant cost.
  const std::uint64_t entries0 = server.stp().entries_converted();
  {
    watch::SuRequest req{static_cast<std::uint32_t>(row.requests + 1),
                         radio::BlockId{3}, eirp};
    auto p = client.prepare_request(req.su_id, make_f(req),
                                    std::make_pair(3u, 4u));
    client.submit(p);
    core::SuResponseMsg resp;
    bool fast = false;
    if (!client.wait_response(p.request_id, &resp, 600000, &fast) || fast ||
        !client.su(req.su_id)
             .process_response(resp, server.license_key())
             .granted)
      row.decisions_match = false;
  }
  const std::uint64_t entries_per_grant =
      server.stp().entries_converted() - entries0;

  // Prepare (encrypt) the whole mix off the clock.
  std::vector<rpc::RpcClient::PreparedRequest> prepared;
  std::vector<bool> expect_deny;
  prepared.reserve(row.requests);
  for (std::size_t i = 0; i < row.requests; ++i) {
    const bool deny = deny_slot(i, deny_pct);
    expect_deny.push_back(deny);
    watch::SuRequest req{static_cast<std::uint32_t>(i + 1),
                         radio::BlockId{deny ? 0u : 3u}, eirp};
    prepared.push_back(client.prepare_request(
        req.su_id, make_f(req),
        deny ? std::make_pair(0u, 1u) : std::make_pair(3u, 4u)));
  }

  const std::uint64_t dec0 =
      server.stp().entries_converted() + server.stp().probe_slots_signed();
  const std::uint64_t fp0 = server.sdc().stats().prefilter_false_positives;
  auto wire0 = client.transport().stats();
  auto t0 = Clock::now();
  for (const auto& p : prepared) client.submit(p);
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    core::SuResponseMsg resp;
    bool fast = false;
    if (!client.wait_response(prepared[i].request_id, &resp, 600000, &fast)) {
      std::fprintf(stderr, "warning: denial-sweep tcp request %zu timed out\n",
                   i);
      row.decisions_match = false;
      continue;
    }
    bool granted = false;
    if (fast) {
      ++row.fast_denials;
    } else {
      granted = client.su(prepared[i].su_id)
                    .process_response(resp, server.license_key())
                    .granted;
      if (granted)
        ++row.grants;
      else
        ++row.full_denials;
    }
    if (granted == expect_deny[i]) row.decisions_match = false;
  }
  row.serve_wall_ms = ms_since(t0);
  auto wire1 = client.transport().stats();
  const std::uint64_t decryptions = server.stp().entries_converted() +
                                    server.stp().probe_slots_signed() - dec0;
  row.prefilter_false_positives =
      server.sdc().stats().prefilter_false_positives - fp0;
  const std::uint64_t wire_bytes =
      (wire1.bytes_sent - wire0.bytes_sent) +
      (wire1.bytes_received - wire0.bytes_received);
  finish_denial_row(row, decryptions, entries_per_grant, wire_bytes);
  return row;
}

void print_denial_row(const DenialRow& r) {
  std::printf(
      "  %-3s deny=%2zu%% filter=%-3s | %7.2f req/s | grant %2zu fast %2zu "
      "full %2zu | STP dec/denied %5.2f | %7.2f kB/req | wall %8.1f ms%s\n",
      r.transport.c_str(), r.deny_pct, r.filter ? "on" : "off",
      r.requests_per_sec, r.grants, r.fast_denials, r.full_denials,
      r.stp_decryptions_per_denied, r.wire_bytes_per_request / 1e3,
      r.serve_wall_ms, r.decisions_match ? "" : "  [DECISION MISMATCH]");
}

std::vector<DenialRow> run_denial_sweep(bool quick, bool tcp_only) {
  std::printf(
      "Denial-mix sweep at n=512, C=2, B=4 (§3.8 prefilter off vs on; "
      "deny requests hit the exhausted block, wall-clock req/s):\n");
  std::vector<DenialRow> rows;
  for (std::size_t deny_pct :
       {std::size_t{20}, std::size_t{50}, std::size_t{80}}) {
    for (bool tcp : {false, true}) {
      if (tcp_only && !tcp) continue;
      const std::uint64_t seed = 0xFA57DE00 + deny_pct * 4 + (tcp ? 2 : 0);
      DenialRow off = tcp ? measure_denial_tcp(deny_pct, false, quick, seed)
                          : measure_denial_sim(deny_pct, false, quick, seed);
      print_denial_row(off);
      DenialRow on = tcp ? measure_denial_tcp(deny_pct, true, quick, seed + 1)
                         : measure_denial_sim(deny_pct, true, quick, seed + 1);
      print_denial_row(on);
      if (off.requests_per_sec > 0)
        std::printf("    -> prefilter at %zu%% deny (%s): %.2fx req/s, "
                    "%zu full denials -> %zu\n",
                    deny_pct, on.transport.c_str(),
                    on.requests_per_sec / off.requests_per_sec,
                    off.full_denials, on.full_denials);
      rows.push_back(off);
      rows.push_back(on);
    }
  }
  std::printf("\n");
  return rows;
}

// ---- §3.9 dynamic-spectrum scenario sweep --------------------------------
//
// The time-stepped ScenarioEngine — vehicular SU mobility, TV-channel
// churn, PU relocation/power-toggles, license expiry and revocation — run
// twice per fleet size over the identical seeded schedule: once with
// full-column PU updates, once with §3.9 incremental deltas. The tests
// prove the two runs decide identically tick for tick, so the only thing
// that differs here is cost: update_ms_per_send (client encrypt + SDC fold
// + re-probe round, the incremental path's headline) must show the delta
// rows ≥3x cheaper — scripts/check_perf_regression.py enforces that floor
// and an absolute ticks/sec guard on the committed snapshot.

struct ScenarioRow {
  bool use_delta = false;
  std::size_t num_sus = 0;
  std::size_t ticks = 0;
  std::size_t pu_events = 0;
  std::size_t updates_sent = 0;
  std::size_t requests = 0;
  std::size_t grants = 0;
  std::size_t denials = 0;
  std::size_t fast_denials = 0;
  double delta_cells_per_tick = 0;
  double wal_bytes_per_tick = 0;
  double update_wall_ms = 0;
  double update_ms_per_send = 0;
  double ticks_per_sec = 0;
  double requests_per_sec = 0;  // sustained: whole-run wall clock
};

ScenarioRow measure_scenario(bool use_delta, std::size_t num_sus,
                             std::uint32_t ticks, std::uint64_t seed) {
  namespace fs = std::filesystem;
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 2;
  cfg.watch.grid_cols = 6;
  cfg.watch.block_size_m = 400.0;
  cfg.watch.channels = 3;
  cfg.paillier_bits = 512;
  cfg.rsa_bits = 384;
  cfg.blind_bits = 16;
  cfg.mr_rounds = 6;
  cfg.num_shards = 3;
  cfg.denial_filter.enabled = true;
  fs::path dir = fs::temp_directory_path() /
                 ("pisa_bench_scenario_" + std::to_string(::getpid()) + "_" +
                  std::to_string(num_sus) + (use_delta ? "_delta" : "_full"));
  fs::remove_all(dir);
  fs::create_directories(dir);
  cfg.durability.enabled = true;
  cfg.durability.dir = dir.string();
  cfg.durability.snapshot_every = 8;

  crypto::ChaChaRng rng{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}},
                                   {1, radio::BlockId{7}},
                                   {2, radio::BlockId{11}}};
  core::PisaSystem system{cfg, sites, model, rng};
  for (std::size_t id = 0; id < num_sus; ++id)
    system.add_su(static_cast<std::uint32_t>(id));
  if (use_delta) {
    // Offline phase of the §3.9 delta path (paper §VI-A's pooled-preparation
    // argument applied to the PU side): each PU precomputes r^n randomizer
    // factors between events, so a live delta cell costs one modular
    // multiplication. The full-column rows stay un-pooled — they are the
    // pre-§3.9 baseline the speedup guard compares against.
    for (const auto& site : sites)
      system.pu(site.pu_id).precompute_randomizers(1024);
  }

  core::ScenarioConfig sc;
  sc.ticks = ticks;
  sc.num_sus = static_cast<std::uint32_t>(num_sus);
  sc.seed = 0x5CEA0 + num_sus;  // same schedule for the full/delta pair
  sc.license_ttl_ticks = 8;
  sc.request_range_blocks = 2;
  sc.use_delta = use_delta;

  core::SimScenarioDriver driver{system};
  core::ScenarioEngine engine{cfg, sites, sc, driver};
  auto res = engine.run();

  ScenarioRow row;
  row.use_delta = use_delta;
  row.num_sus = num_sus;
  row.ticks = res.ticks.size();
  row.pu_events = res.pu_events;
  row.updates_sent = res.updates_sent;
  row.requests = res.requests;
  row.grants = res.grants;
  row.denials = res.denials;
  row.fast_denials = res.fast_denials;
  row.delta_cells_per_tick =
      static_cast<double>(res.delta_cells) / static_cast<double>(row.ticks);
  row.wal_bytes_per_tick =
      static_cast<double>(res.wal_bytes) / static_cast<double>(row.ticks);
  row.update_wall_ms = res.update_wall_ms;
  row.update_ms_per_send =
      res.updates_sent > 0
          ? res.update_wall_ms / static_cast<double>(res.updates_sent)
          : 0;
  row.ticks_per_sec = res.ticks_per_sec();
  row.requests_per_sec =
      res.total_wall_ms > 0
          ? static_cast<double>(res.requests) * 1e3 / res.total_wall_ms
          : 0;
  fs::remove_all(dir);
  return row;
}

void print_scenario_row(const ScenarioRow& r) {
  std::printf(
      "  %-5s sus=%zu ticks=%-3zu | %6.2f ticks/s %5.2f req/s sustained | "
      "update %6.2f ms/send (%zu sends) | %5.1f delta cells/tick | wal "
      "%7.1f B/tick | grant %zu deny %zu (fast %zu)\n",
      r.use_delta ? "delta" : "full", r.num_sus, r.ticks, r.ticks_per_sec,
      r.requests_per_sec, r.update_ms_per_send, r.updates_sent,
      r.delta_cells_per_tick, r.wal_bytes_per_tick, r.grants, r.denials,
      r.fast_denials);
}

std::vector<ScenarioRow> run_scenario_sweep(bool quick) {
  const std::uint32_t ticks = quick ? 40 : 120;
  std::printf("Dynamic-spectrum scenario sweep at n=512, C=3, B=12 (§3.9 "
              "mobility/churn/revocation schedule, full-column vs "
              "incremental updates, %u ticks):\n",
              ticks);
  std::vector<std::size_t> fleet{2};
  if (!quick) fleet.push_back(4);
  std::vector<ScenarioRow> rows;
  for (std::size_t sus : fleet) {
    ScenarioRow full = measure_scenario(false, sus, ticks, 0x5CE0 + sus);
    print_scenario_row(full);
    ScenarioRow delta = measure_scenario(true, sus, ticks, 0x5CE0 + sus);
    print_scenario_row(delta);
    if (delta.update_ms_per_send > 0)
      std::printf("    -> incremental update path at %zu SUs: %.2fx "
                  "cheaper per send (guard: >= 3x), %.2fx ticks/s\n",
                  sus, full.update_ms_per_send / delta.update_ms_per_send,
                  delta.ticks_per_sec / full.ticks_per_sec);
    rows.push_back(full);
    rows.push_back(delta);
  }
  std::printf("\n");
  return rows;
}

// ---- §3.10 XOR-PIR vs Paillier query-path sweep --------------------------
//
// The head-to-head ROADMAP item 1 asks for: the same seeded world served
// through the blinded-conversion pipeline and through the XOR multi-server
// PIR path, at the scaling[] grid sizes. The Paillier rows carry the full
// query-path cost (SU-side encryption + SDC blind + STP convert + SDC
// finish); the PIR rows carry share-splitting, ℓ replica scans and the
// XOR reconstruction — no public-key operation anywhere. Latency is wall
// clock per request, bytes are all links of one request (sim: encoded
// payloads off the network stats; tcp: transport byte counters, framing
// included, both directions). decisions_match asserts every verdict equals
// the PlainWatch oracle on both paths — swapping the privacy mechanism
// must never flip a decision. The within-run Paillier/PIR latency pair
// feeds the ≥10x floor in scripts/check_perf_regression.py; the committed
// full-mode snapshot is the ≥50x / ≥10x headline at the 10×60 grid.

struct PirRow {
  std::string transport = "sim";
  std::size_t channels = 0, blocks = 0;
  std::size_t replicas = 0;
  std::size_t paillier_requests = 0, pir_requests = 0;
  double paillier_request_ms = 0;  // mean end-to-end, prep included
  double pir_request_ms = 0;       // mean end-to-end, split + scans + rebuild
  double latency_speedup = 0;      // paillier / pir
  double paillier_bytes_per_request = 0;
  double pir_bytes_per_request = 0;
  double byte_reduction = 0;       // paillier / pir
  double pir_scan_ms_per_request = 0;  // Σ replica-side XOR scan, all ℓ
  bool decisions_match = true;
};

core::PisaConfig pir_sweep_config(std::size_t channels, std::size_t rows,
                                  std::size_t cols, bool pir) {
  core::PisaConfig cfg;
  cfg.watch.grid_rows = rows;
  cfg.watch.grid_cols = cols;
  cfg.watch.block_size_m = 100.0;
  cfg.watch.channels = channels;
  cfg.paillier_bits = 1024;  // the scaling[] rows' key size
  cfg.rsa_bits = 512;
  cfg.blind_bits = 128;
  cfg.mr_rounds = 12;
  if (pir) {
    cfg.query_mode = core::QueryMode::kPir;
    cfg.pir.replicas = 2;
  }
  return cfg;
}

watch::SuRequest pir_sweep_request(std::size_t i, std::size_t channels,
                                   std::size_t blocks) {
  // Deterministic block walk with alternating strong/weak EIRP so both
  // grant and deny verdicts appear in every row's mix.
  return watch::SuRequest{
      1, radio::BlockId{static_cast<std::uint32_t>((i * 7) % blocks)},
      std::vector<double>(channels, i % 2 == 0 ? 100.0 : 1e-4)};
}

PirRow measure_pir_sim(std::size_t channels, std::size_t rows,
                       std::size_t cols, bool quick, std::uint64_t seed) {
  const std::size_t blocks = rows * cols;
  crypto::ChaChaRng rng_enc{seed};
  crypto::ChaChaRng rng_pir{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}}};
  auto enc_cfg = pir_sweep_config(channels, rows, cols, false);
  auto pir_cfg = pir_sweep_config(channels, rows, cols, true);
  core::PisaSystem encrypted{enc_cfg, sites, model, rng_enc};
  core::PisaSystem pirsys{pir_cfg, sites, model, rng_pir};
  watch::PlainWatch oracle{enc_cfg.watch, sites, model};
  encrypted.add_su(1);
  pirsys.add_su(1);
  watch::PuTuning tuning{radio::ChannelId{0}, 1e-6};
  encrypted.pu_update(0, tuning);
  pirsys.pu_update(0, tuning);
  oracle.pu_update(0, tuning);

  PirRow row;
  row.channels = channels;
  row.blocks = blocks;
  row.replicas = pir_cfg.pir.replicas;
  // The Paillier side costs seconds per request at these grids; the PIR
  // side costs microseconds, so it can afford a larger averaging window.
  row.paillier_requests = quick ? 1 : 2;
  row.pir_requests = quick ? 8 : 16;

  std::size_t paillier_bytes = 0;
  auto t0 = Clock::now();
  for (std::size_t i = 0; i < row.paillier_requests; ++i) {
    auto req = pir_sweep_request(i, channels, blocks);
    auto out = encrypted.su_request(req);
    if (!out.completed() || out.granted != oracle.process_request(req).granted)
      row.decisions_match = false;
    paillier_bytes += out.request_bytes + out.convert_bytes +
                      out.convert_reply_bytes + out.response_bytes;
  }
  row.paillier_request_ms =
      ms_since(t0) / static_cast<double>(row.paillier_requests);
  row.paillier_bytes_per_request =
      static_cast<double>(paillier_bytes) /
      static_cast<double>(row.paillier_requests);

  std::size_t pir_bytes = 0;
  t0 = Clock::now();
  for (std::size_t i = 0; i < row.pir_requests; ++i) {
    auto req = pir_sweep_request(i, channels, blocks);
    auto out = pirsys.su_request(req);
    if (!out.completed() || out.granted != oracle.process_request(req).granted)
      row.decisions_match = false;
    pir_bytes += out.request_bytes + out.response_bytes;
  }
  row.pir_request_ms = ms_since(t0) / static_cast<double>(row.pir_requests);
  row.pir_bytes_per_request =
      static_cast<double>(pir_bytes) / static_cast<double>(row.pir_requests);

  double scan_ms = 0;
  for (std::size_t i = 0; i < row.replicas; ++i)
    if (auto* rep = pirsys.pir_replica(i)) scan_ms += rep->stats().scan_total_ms;
  row.pir_scan_ms_per_request =
      scan_ms / static_cast<double>(row.pir_requests);
  row.latency_speedup = speedup(row.paillier_request_ms, row.pir_request_ms);
  row.byte_reduction =
      row.pir_bytes_per_request > 0
          ? row.paillier_bytes_per_request / row.pir_bytes_per_request
          : 0;
  return row;
}

PirRow measure_pir_tcp(std::size_t channels, std::size_t rows,
                       std::size_t cols, bool quick, std::uint64_t seed) {
  const std::size_t blocks = rows * cols;
  auto cfg = pir_sweep_config(channels, rows, cols, true);
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}}};

  crypto::ChaChaRng server_rng{seed};
  rpc::RpcServer server{cfg, server_rng};
  crypto::ChaChaRng client_rng{seed + 1};
  rpc::RpcClient client{cfg, server.group_key(), "127.0.0.1", server.port(),
                        client_rng};
  watch::PlainWatch oracle{cfg.watch, sites, model};
  for (const auto& site : sites) client.add_pu(site);
  client.add_su(1);
  watch::PuTuning tuning{radio::ChannelId{0}, 1e-6};
  client.pu_update(0, tuning);
  oracle.pu_update(0, tuning);

  PirRow row;
  row.transport = "tcp";
  row.channels = channels;
  row.blocks = blocks;
  row.replicas = cfg.pir.replicas;
  row.paillier_requests = quick ? 1 : 2;
  row.pir_requests = quick ? 8 : 16;

  // Both privacy mechanisms ride the same pipelined connection, so the
  // transport byte counters (framing included, both directions) isolate
  // each request's wire cost as a before/after delta.
  auto wire = [&client]() {
    auto s = client.transport().stats();
    return s.bytes_sent + s.bytes_received;
  };

  std::uint64_t paillier_bytes = 0;
  auto t0 = Clock::now();
  for (std::size_t i = 0; i < row.paillier_requests; ++i) {
    auto req = pir_sweep_request(i, channels, blocks);
    auto f = oracle.build_request_matrix(req);
    auto w0 = wire();
    auto prepared = client.prepare_request(req.su_id, f);
    client.submit(prepared);
    core::SuResponseMsg resp;
    if (!client.wait_response(prepared.request_id, &resp, 600000)) {
      std::fprintf(stderr, "warning: pir-sweep paillier request timed out\n");
      row.decisions_match = false;
      continue;
    }
    bool granted =
        client.su(req.su_id).process_response(resp, server.license_key())
            .granted;
    if (granted != oracle.process_request(req).granted)
      row.decisions_match = false;
    paillier_bytes += wire() - w0;
  }
  row.paillier_request_ms =
      ms_since(t0) / static_cast<double>(row.paillier_requests);
  row.paillier_bytes_per_request =
      static_cast<double>(paillier_bytes) /
      static_cast<double>(row.paillier_requests);

  std::uint64_t pir_bytes = 0;
  t0 = Clock::now();
  for (std::size_t i = 0; i < row.pir_requests; ++i) {
    auto req = pir_sweep_request(i, channels, blocks);
    auto f = oracle.build_request_matrix(req);
    auto w0 = wire();
    auto out = client.pir_request(req.su_id, f, 0,
                                  static_cast<std::uint32_t>(blocks), 600000);
    pir_bytes += wire() - w0;
    if (!out.completed || out.granted != oracle.process_request(req).granted)
      row.decisions_match = false;
  }
  row.pir_request_ms = ms_since(t0) / static_cast<double>(row.pir_requests);
  row.pir_bytes_per_request =
      static_cast<double>(pir_bytes) / static_cast<double>(row.pir_requests);

  double scan_ms = 0;
  for (std::size_t i = 0; i < row.replicas; ++i)
    if (auto* rep = server.pir_replica(i)) scan_ms += rep->stats().scan_total_ms;
  row.pir_scan_ms_per_request =
      scan_ms / static_cast<double>(row.pir_requests);
  row.latency_speedup = speedup(row.paillier_request_ms, row.pir_request_ms);
  row.byte_reduction =
      row.pir_bytes_per_request > 0
          ? row.paillier_bytes_per_request / row.pir_bytes_per_request
          : 0;
  return row;
}

void print_pir_row(const PirRow& r) {
  std::printf(
      "  %-3s C=%-2zu B=%-3zu | paillier %8.1f ms %8.1f kB/req | pir %7.2f ms "
      "%6.2f kB/req (scan %5.2f ms) | %6.1fx latency %5.1fx bytes%s\n",
      r.transport.c_str(), r.channels, r.blocks, r.paillier_request_ms,
      r.paillier_bytes_per_request / 1e3, r.pir_request_ms,
      r.pir_bytes_per_request / 1e3, r.pir_scan_ms_per_request,
      r.latency_speedup, r.byte_reduction,
      r.decisions_match ? "" : "  [DECISION MISMATCH]");
}

std::vector<PirRow> run_pir_sweep(bool quick, bool tcp_only) {
  std::printf(
      "XOR-PIR vs Paillier query path at n=1024 (§3.10 head-to-head at the "
      "scaling[] grids; wall-clock per-request latency):\n");
  struct GridSize {
    std::size_t channels, rows, cols;
  };
  // The scaling[] grid sizes: 5×30 always, the 10×60 headline in full mode.
  std::vector<GridSize> sizes{{5, 3, 10}};
  if (!quick) sizes.push_back({10, 5, 12});
  std::vector<PirRow> out;
  for (const auto& s : sizes) {
    if (!tcp_only) {
      out.push_back(measure_pir_sim(s.channels, s.rows, s.cols, quick,
                                    0x919000 + s.channels));
      print_pir_row(out.back());
    }
    // Quick mode keeps one size and one transport (sim) so the perf-smoke
    // CI job covers the path without paying for the socket pair twice.
    if (!quick || tcp_only) {
      out.push_back(measure_pir_tcp(s.channels, s.rows, s.cols, quick,
                                    0x919100 + s.channels));
      print_pir_row(out.back());
    }
    const auto& last = out.back();
    std::printf("    -> PIR at C=%zu B=%zu: %.0fx lower query latency "
                "(guard: >= 10x), %.1fx fewer wire bytes\n",
                s.channels, s.rows * s.cols, last.latency_speedup,
                last.byte_reduction);
  }
  std::printf("\n");
  return out;
}

double byte_ratio(std::size_t base, std::size_t packed) {
  return packed > 0 ? static_cast<double>(base) / static_cast<double>(packed)
                    : 0;
}

void print_pack_row(const Row& base, const Row& r) {
  std::printf(
      "  k=%zu | PU enc %7.1f ms (%.2fx) fold %6.1f ms (%.2fx) recompute "
      "%7.1f ms (%.2fx) | SDC->STP %7.2f kB (%.2fx) STP->SDC %6.2f kB "
      "(%.2fx) | req %7.2f kB (%.2fx) STP %7.1f ms (%.2fx)\n",
      r.pack_slots, r.pu_encrypt_ms,
      speedup(base.pu_encrypt_ms, r.pu_encrypt_ms),
      r.pu_encrypt_ms + r.pu_apply_ms,
      speedup(base.pu_encrypt_ms + base.pu_apply_ms,
              r.pu_encrypt_ms + r.pu_apply_ms),
      r.pu_recompute_ms, speedup(base.pu_recompute_ms, r.pu_recompute_ms),
      static_cast<double>(r.convert_bytes) / 1e3,
      byte_ratio(base.convert_bytes, r.convert_bytes),
      static_cast<double>(r.convert_reply_bytes) / 1e3,
      byte_ratio(base.convert_reply_bytes, r.convert_reply_bytes),
      static_cast<double>(r.request_bytes) / 1e3,
      byte_ratio(base.request_bytes, r.request_bytes), r.stp_convert_ms,
      speedup(base.stp_convert_ms, r.stp_convert_ms));
}

benchjson::JsonFields row_json(const Row& r) {
  benchjson::JsonFields j;
  j.add("paillier_bits", r.paillier_bits);
  j.add("channels", r.channels);
  j.add("blocks", r.blocks);
  j.add("num_threads", r.num_threads);
  j.add("pack_slots", r.pack_slots);
  j.add("prep_fresh_ms", r.prep_fresh_ms);
  j.add("prep_pooled_ms", r.prep_pooled_ms);
  j.add("prep_hybrid_ms", r.prep_hybrid_ms);
  j.add("request_bytes", r.request_bytes);
  j.add("sdc_phase1_ms", r.sdc_phase1_ms);
  j.add("sdc_phase2_ms", r.sdc_phase2_ms);
  j.add("stp_convert_ms", r.stp_convert_ms);
  j.add("stp_convert_pooled_ms", r.stp_convert_pooled_ms);
  j.add("stp_convert_ms_per_entry",
        r.stp_convert_ms / static_cast<double>(r.entries()));
  j.add("convert_bytes", r.convert_bytes);
  j.add("convert_reply_bytes", r.convert_reply_bytes);
  j.add("pu_encrypt_ms", r.pu_encrypt_ms);
  j.add("pu_apply_ms", r.pu_apply_ms);
  j.add("pu_recompute_ms", r.pu_recompute_ms);
  j.add("pu_update_bytes", r.pu_update_bytes);
  j.add("response_bytes", r.response_bytes);
  j.add("su_request_total_ms", r.su_request_total_ms());
  return j;
}

benchjson::JsonFields throughput_json(const ThroughputRow& r) {
  benchjson::JsonFields j;
  j.add("transport", r.transport);
  j.add("mode", r.mode);
  j.add("concurrency", r.concurrency);
  j.add("entries_per_request", r.entries_per_request);
  j.add("makespan_us", r.makespan_us);
  j.add("requests_per_sec", r.requests_per_sec);
  j.add("p50_latency_us", r.p50_latency_us);
  j.add("p95_latency_us", r.p95_latency_us);
  j.add("p99_latency_us", r.p99_latency_us);
  j.add("convert_round_trips", r.convert_round_trips);
  j.add("bytes_per_request", r.bytes_per_request);
  j.add("wire_bytes_per_request", r.wire_bytes_per_request);
  j.add("serve_wall_ms", r.serve_wall_ms);
  return j;
}

benchjson::JsonFields shard_json(const ShardRow& r) {
  benchjson::JsonFields j;
  j.add("num_shards", r.num_shards);
  j.add("durability", std::size_t{r.durability ? 1u : 0u});
  j.add("channels", r.channels);
  j.add("blocks", r.blocks);
  j.add("pu_updates", r.pu_updates);
  j.add("pu_fold_ms", r.pu_fold_ms);
  j.add("pu_fold_rows_per_sec_per_shard", r.pu_fold_rows_per_sec_per_shard);
  j.add("requests_per_sec", r.requests_per_sec);
  j.add("serve_wall_ms", r.serve_wall_ms);
  j.add("recovery_ms", r.recovery_ms);
  j.add("wal_records", static_cast<std::size_t>(r.wal_records));
  j.add("wal_bytes", static_cast<std::size_t>(r.wal_bytes));
  j.add("snapshots_written", static_cast<std::size_t>(r.snapshots_written));
  return j;
}

benchjson::JsonFields denial_json(const DenialRow& r) {
  benchjson::JsonFields j;
  j.add("transport", r.transport);
  j.add("deny_pct", r.deny_pct);
  j.add("filter", std::size_t{r.filter ? 1u : 0u});
  j.add("requests", r.requests);
  j.add("grants", r.grants);
  j.add("fast_denials", r.fast_denials);
  j.add("full_denials", r.full_denials);
  j.add("serve_wall_ms", r.serve_wall_ms);
  j.add("requests_per_sec", r.requests_per_sec);
  j.add("stp_decryptions", static_cast<std::size_t>(r.stp_decryptions));
  j.add("stp_decryptions_per_denied", r.stp_decryptions_per_denied);
  j.add("wire_bytes_per_request", r.wire_bytes_per_request);
  j.add("prefilter_false_positives",
        static_cast<std::size_t>(r.prefilter_false_positives));
  j.add("decisions_match", std::size_t{r.decisions_match ? 1u : 0u});
  return j;
}

benchjson::JsonFields pir_json(const PirRow& r) {
  benchjson::JsonFields j;
  j.add("transport", r.transport);
  j.add("channels", r.channels);
  j.add("blocks", r.blocks);
  j.add("replicas", r.replicas);
  j.add("paillier_requests", r.paillier_requests);
  j.add("pir_requests", r.pir_requests);
  j.add("paillier_request_ms", r.paillier_request_ms);
  j.add("pir_request_ms", r.pir_request_ms);
  j.add("latency_speedup", r.latency_speedup);
  j.add("paillier_bytes_per_request", r.paillier_bytes_per_request);
  j.add("pir_bytes_per_request", r.pir_bytes_per_request);
  j.add("byte_reduction", r.byte_reduction);
  j.add("pir_scan_ms_per_request", r.pir_scan_ms_per_request);
  j.add("decisions_match", std::size_t{r.decisions_match ? 1u : 0u});
  return j;
}

benchjson::JsonFields scenario_json(const ScenarioRow& r) {
  benchjson::JsonFields j;
  j.add("use_delta", std::size_t{r.use_delta ? 1u : 0u});
  j.add("num_sus", r.num_sus);
  j.add("ticks", r.ticks);
  j.add("pu_events", r.pu_events);
  j.add("updates_sent", r.updates_sent);
  j.add("requests", r.requests);
  j.add("grants", r.grants);
  j.add("denials", r.denials);
  j.add("fast_denials", r.fast_denials);
  j.add("delta_cells_per_tick", r.delta_cells_per_tick);
  j.add("wal_bytes_per_tick", r.wal_bytes_per_tick);
  j.add("update_wall_ms", r.update_wall_ms);
  j.add("update_ms_per_send", r.update_ms_per_send);
  j.add("ticks_per_sec", r.ticks_per_sec);
  j.add("requests_per_sec", r.requests_per_sec);
  return j;
}

void write_json(const char* path, bool quick, const std::vector<Row>& scaling,
                const std::vector<Row>& sweep,
                const std::vector<Row>& pack_sweep,
                const std::vector<ThroughputRow>& throughput,
                const std::vector<ShardRow>& shard_sweep,
                const std::vector<DenialRow>& denial_sweep,
                const std::vector<ScenarioRow>& scenario_sweep,
                const std::vector<PirRow>& pir_sweep) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  auto rows_of = [](const std::vector<Row>& rs) {
    std::vector<benchjson::JsonFields> out;
    out.reserve(rs.size());
    for (const auto& r : rs) out.push_back(row_json(r));
    return out;
  };
  std::vector<benchjson::JsonFields> tput;
  tput.reserve(throughput.size());
  for (const auto& r : throughput) tput.push_back(throughput_json(r));
  std::vector<benchjson::JsonFields> shards;
  shards.reserve(shard_sweep.size());
  for (const auto& r : shard_sweep) shards.push_back(shard_json(r));
  std::vector<benchjson::JsonFields> denials;
  denials.reserve(denial_sweep.size());
  for (const auto& r : denial_sweep) denials.push_back(denial_json(r));
  std::vector<benchjson::JsonFields> scenarios;
  scenarios.reserve(scenario_sweep.size());
  for (const auto& r : scenario_sweep) scenarios.push_back(scenario_json(r));
  std::vector<benchjson::JsonFields> pir;
  pir.reserve(pir_sweep.size());
  for (const auto& r : pir_sweep) pir.push_back(pir_json(r));
  std::fprintf(f,
               "{\n  \"quick\": %s,\n  \"git_rev\": \"%s\",\n"
               "  \"build_type\": \"%s\",\n  \"build_flags\": \"%s\",\n"
               "  \"hardware_threads\": %zu,\n",
               quick ? "true" : "false", PISA_GIT_REV, PISA_BENCH_BUILD_TYPE,
               PISA_BENCH_FLAGS, exec::ThreadPool::hardware_threads());
  benchjson::write_row_array(f, "scaling", rows_of(scaling), false);
  benchjson::write_row_array(f, "thread_sweep", rows_of(sweep), false);
  benchjson::write_row_array(f, "pack_sweep", rows_of(pack_sweep), false);
  benchjson::write_row_array(f, "throughput", tput, false);
  benchjson::write_row_array(f, "shard_sweep", shards, false);
  benchjson::write_row_array(f, "denial_sweep", denials, false);
  benchjson::write_row_array(f, "scenario_sweep", scenarios, false);
  benchjson::write_row_array(f, "pir_sweep", pir, true);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

std::vector<ThroughputRow> run_tcp_sweep(bool quick) {
  std::printf("TCP closed-loop throughput at n=512, C=2, B=4 (8 "
              "entries/request; wall-clock req/s over real epoll sockets, "
              "one pipelined connection):\n");
  std::vector<std::size_t> fleet{64};
  if (!quick) {
    fleet.push_back(256);
    fleet.push_back(1024);
  }
  std::vector<ThroughputRow> rows;
  for (std::size_t c : fleet) {
    rows.push_back(measure_tcp_throughput(c, 0x7C9000 + c));
    print_tcp_throughput_row(rows.back());
  }
  std::printf("\n");
  return rows;
}

int main(int argc, char** argv) {
  bool quick = false;
  bool tcp_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg{argv[i]};
    if (arg == "--quick") quick = true;
    if (arg == "--transport=tcp") tcp_only = true;
  }

  std::printf("PISA system evaluation (Figure 6 reproduction)%s%s\n",
              quick ? " [--quick]" : "", tcp_only ? " [--transport=tcp]" : "");
  std::printf("==============================================\n\n");

  if (tcp_only) {
    // Load-generator mode: just the socket sweeps, nothing else on the
    // clock. The JSON still parses like every other run; the non-socket
    // sections are simply empty.
    auto tcp_rows = run_tcp_sweep(quick);
    auto denial_rows = run_denial_sweep(quick, /*tcp_only=*/true);
    auto pir_rows = run_pir_sweep(quick, /*tcp_only=*/true);
    write_json("BENCH_system.json", quick, {}, {}, {}, tcp_rows, {},
               denial_rows, {}, pir_rows);
    std::printf("\nMachine-readable results written to BENCH_system.json\n");
    std::printf("\nDone.\n");
    return 0;
  }

  std::printf("Scaling check at n=1024 (per-entry costs must be flat):\n");
  Row r1 = measure(1024, 5, 3, 10, 42);    // 150 entries
  Row r2 = measure(1024, 10, 5, 12, 43);   // 600 entries
  print_row(r1);
  print_row(r2);
  double per1 = r1.total_processing_ms() / static_cast<double>(r1.entries());
  double per2 = r2.total_processing_ms() / static_cast<double>(r2.entries());
  std::printf("  per-entry SDC processing: %.3f ms vs %.3f ms (ratio %.2f, "
              "linear if ~1)\n\n",
              per1, per2, per1 / per2);

  // Slot-packing sweep (DESIGN.md §3.4) over an identical workload + seed:
  // the k > 1 rows fold k channels per ciphertext, so the PU encrypt/fold
  // path and the SDC↔STP link must shrink ~k× in time and bytes while the
  // grant decision stays byte-identical at k = 1 and value-identical above.
  std::printf("Slot-packing sweep at n=1024, C=8, B=10 (vs k=1):\n");
  std::vector<Row> pack_sweep;
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    pack_sweep.push_back(measure(1024, 8, 2, 5, 77, 1, k));
    print_pack_row(pack_sweep.front(), pack_sweep.back());
  }
  std::printf("\n");

  std::vector<Row> sweep;
  if (!quick) {
    // Thread sweep over the same workload + seed: every phase re-runs on 1,
    // 2 and 4 lanes. Randomness is pre-sampled sequentially, so the protocol
    // outputs are bit-identical at every setting and the sweep measures pure
    // modexp parallelism. Speedups only materialize with that many physical
    // cores, of course (hardware_threads below says what this host offers).
    std::printf("Thread sweep at n=1024, 150 entries (speedup vs 1 thread; "
                "host has %zu hardware threads):\n",
                exec::ThreadPool::hardware_threads());
    for (std::size_t nt : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      sweep.push_back(measure(1024, 5, 3, 10, 42, nt));
      print_sweep_row(sweep.front(), sweep.back());
    }
    std::printf("\n");
  } else {
    // --quick still emits a two-point thread sweep — r1 already measured
    // this workload on one lane, so only the two-lane row costs anything —
    // keeping thread_sweep non-empty for BENCH_system.json consumers and
    // the perf guard.
    sweep.push_back(r1);
    sweep.push_back(measure(1024, 5, 3, 10, 42, 2));
  }

  // Cross-request throughput engine (DESIGN.md §3.5): sequential baseline
  // vs concurrent-unbatched vs the batched path, per fleet size.
  std::printf("Multi-SU throughput at n=1024, C=4, B=6 (24 entries/request; "
              "virtual-time req/s):\n");
  std::vector<ThroughputRow> throughput;
  std::vector<std::size_t> fleet{2, 8};
  if (!quick) fleet.push_back(16);
  for (std::size_t c : fleet) {
    for (auto mode :
         {ThroughputMode::kSequential, ThroughputMode::kConcurrentUnbatched,
          ThroughputMode::kBatched}) {
      throughput.push_back(measure_throughput(mode, c, 0xBEEF00 + c));
      print_throughput_row(throughput.back());
    }
    const auto& seq = throughput[throughput.size() - 3];
    const auto& bat = throughput.back();
    std::printf("    -> batched vs sequential at %zu SUs: %.2fx requests/sec, "
                "%zu -> %zu convert round-trips\n",
                c, bat.requests_per_sec / seq.requests_per_sec,
                seq.convert_round_trips, bat.convert_round_trips);
  }
  std::printf("\n");

  // Socket-path closed-loop sweep (DESIGN.md §3.7): the same throughput[]
  // table gains transport="tcp" rows measured over real sockets. Quick mode
  // keeps the 64-session row so CI's perf guard always has a tcp row to
  // compare against the committed snapshot.
  auto tcp_rows = run_tcp_sweep(quick);
  throughput.insert(throughput.end(), tcp_rows.begin(), tcp_rows.end());

  // Shard × durability sweep (DESIGN.md §3.6): identical workload per shard
  // count, WAL off vs on. The on/off requests/sec pair feeds the 15%
  // durability-overhead guard in scripts/check_perf_regression.py.
  std::printf("Shard x durability sweep at n=768, C=8, B=6 (wall-clock "
              "req/s; recovery = crash + rebuild):\n");
  // All four shard counts run in --quick too (the per-row burst shrinks
  // instead): the committed BENCH_system.json carries the full N column
  // and CI always has the on/off pair for the overhead guard.
  std::vector<ShardRow> shard_sweep;
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}}) {
    ShardRow off = measure_shard(n, false, quick, 0xD0C5EED);
    print_shard_row(off);
    ShardRow on = measure_shard(n, true, quick, 0xD0C5EED);
    print_shard_row(on);
    if (on.requests_per_sec > 0)
      std::printf("    -> durability overhead at %zu shard%s: %+.1f%% req/s "
                  "(guard: <= 15%%), recovery %.1f ms\n",
                  n, n == 1 ? "" : "s",
                  (off.requests_per_sec / on.requests_per_sec - 1.0) * 100.0,
                  on.recovery_ms);
    shard_sweep.push_back(off);
    shard_sweep.push_back(on);
  }
  std::printf("\n");

  // Denial-mix sweep (DESIGN.md §3.8): the grant:deny mix with the
  // encrypted cuckoo prefilter off vs on, sim and tcp. The 80%-deny on/off
  // pair feeds the ≥2x fast-deny guard in scripts/check_perf_regression.py.
  auto denial_rows = run_denial_sweep(quick, /*tcp_only=*/false);

  // Dynamic-spectrum scenario sweep (DESIGN.md §3.9): the identical seeded
  // mobility/churn/revocation schedule with full-column vs incremental PU
  // updates. The per-send update-cost pair feeds the ≥3x incremental
  // speedup floor in scripts/check_perf_regression.py; quick mode shortens
  // the schedule and keeps the 2-SU fleet only.
  auto scenario_rows = run_scenario_sweep(quick);

  // XOR-PIR vs Paillier head-to-head (DESIGN.md §3.10): the same seeded
  // world served through both privacy mechanisms at the scaling[] grids.
  // The within-run latency pair feeds the ≥10x PIR floor in
  // scripts/check_perf_regression.py; quick mode keeps the sim 5×30 row.
  auto pir_rows = run_pir_sweep(quick, /*tcp_only=*/false);

  std::vector<Row> scaling{r1, r2};
  if (!quick) {
    std::printf("Production key size n=2048 (paper's configuration):\n");
    Row r3 = measure(2048, 4, 3, 8, 44);     // 96 entries
    print_row(r3);
    print_extrapolation(r3);
    scaling.push_back(r3);
  }

  write_json("BENCH_system.json", quick, scaling, sweep, pack_sweep,
             throughput, shard_sweep, denial_rows, scenario_rows, pir_rows);
  std::printf("\nMachine-readable results written to BENCH_system.json\n");

  std::printf("\nDone.\n");
  return 0;
}
