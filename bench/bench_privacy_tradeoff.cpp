// §VI-A reproduction: SU location privacy vs preparation/processing time.
//
// Paper: "the request preparation/processing time grows linearly as the
// protection level on SU's location increases, and it will reach the
// maximum value when considering the complete protection" — e.g. disclosing
// "somewhere in the north half" halves the encrypted matrix (100×300
// instead of 100×600).
//
// We sweep the disclosed block range over {1/8, 1/4, 1/2, 1} of the area
// and report preparation time, SDC processing time and request bytes; the
// series must be linear in the disclosed fraction.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/chacha_rng.hpp"
#include "exec/thread_pool.hpp"
#include "radio/pathloss.hpp"

namespace {

using namespace pisa;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("SU location privacy vs time trade-off (paper SVI-A)\n");
  std::printf("===================================================\n\n");

  core::PisaConfig cfg;
  cfg.watch.grid_rows = 4;
  cfg.watch.grid_cols = 16;  // 64 blocks; ranges of 8/16/32/64
  cfg.watch.block_size_m = 100.0;
  cfg.watch.channels = 8;
  cfg.paillier_bits = 1024;
  cfg.rsa_bits = 512;
  cfg.blind_bits = 128;
  cfg.mr_rounds = 12;

  crypto::ChaChaRng rng{std::uint64_t{7}};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  // PU site in block 0 so every F support set sits in the lowest columns
  // and all tested ranges [0, hi) are valid disclosures.
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}}};
  core::PisaSystem system{cfg, sites, model, rng};
  auto& su = system.add_su(1);
  // Direct begin/finish_request calls below bypass the network key
  // directory, so prime the SDC with the SU key explicitly.
  system.sdc().register_su_key(1, su.public_key());

  watch::SuRequest request{1, radio::BlockId{1},
                           std::vector<double>(cfg.watch.channels, 1.0)};
  auto f = system.build_f(request);
  const auto total_blocks = static_cast<std::uint32_t>(f.blocks());

  std::printf("%-28s %12s %14s %14s %12s\n", "disclosed range (blocks)",
              "entries", "prep (ms)", "SDC proc (ms)", "request MB");

  std::uint64_t rid = 1;
  double base_per_entry = -1;
  for (std::uint32_t hi : {total_blocks / 8, total_blocks / 4,
                           total_blocks / 2, total_blocks}) {
    auto t0 = Clock::now();
    auto msg = su.prepare_request(f, rid++, 0, hi);
    double prep = ms_since(t0);
    std::size_t bytes =
        msg.encode(system.stp().group_key().ciphertext_bytes()).size();

    t0 = Clock::now();
    auto conv = system.sdc().begin_request(msg);
    auto xresp = system.stp().convert(conv);
    auto resp = system.sdc().finish_request(xresp);
    (void)resp;
    double proc = ms_since(t0);

    std::size_t entries = cfg.watch.channels * hi;
    std::printf("[0, %3u) of %3u  (%5.1f%%)   %12zu %14.1f %14.1f %12.2f\n",
                hi, total_blocks,
                100.0 * static_cast<double>(hi) / total_blocks, entries, prep,
                proc, static_cast<double>(bytes) / 1e6);
    if (base_per_entry < 0) base_per_entry = proc / static_cast<double>(entries);
  }

  std::printf("\nLinear if per-entry cost stays flat across rows (paper: "
              "\"asymptotically linear\").\n");

  // Thread sweep: the full-privacy request re-run on 1/2/4 execution lanes.
  // The trade-off curve itself is thread-count invariant (outputs are
  // bit-identical — randomness is pre-sampled sequentially); only the
  // wall-clock shifts, and only on hosts with that many cores.
  std::printf("\nThread sweep, full disclosure [0, %u) (host has %zu hardware "
              "threads):\n",
              total_blocks, exec::ThreadPool::hardware_threads());
  double base_ms = -1;
  for (std::size_t nt : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    auto pool = nt > 1 ? std::make_shared<exec::ThreadPool>(nt) : nullptr;
    su.set_thread_pool(pool);
    system.sdc().set_thread_pool(pool);
    system.stp().set_thread_pool(pool);

    auto t0 = Clock::now();
    auto msg = su.prepare_request(f, rid++, 0, total_blocks);
    auto conv = system.sdc().begin_request(msg);
    auto xresp = system.stp().convert(conv);
    (void)system.sdc().finish_request(xresp);
    double ms = ms_since(t0);
    if (base_ms < 0) base_ms = ms;
    std::printf("  threads=%zu   end-to-end %10.1f ms   speedup %.2fx\n", nt,
                ms, base_ms / ms);
  }
  return 0;
}
