// Extension ablation: classic STP vs threshold-STP (2-of-2 shared group
// key, the paper's §VII future-work trust relaxation).
//
// Measures the cost of removing the single point of decryption:
//   * SDC phase 1 grows by one partial decryption (a wide exponentiation)
//     per budget entry;
//   * SDC→STP traffic doubles (Ṽ entry + partial per entry);
//   * STP conversion swaps one CRT decryption for one exponentiation with
//     its (wider) share plus a combine.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/chacha_rng.hpp"
#include "radio/pathloss.hpp"

namespace {

using namespace pisa;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Result {
  double sdc_phase1_ms = 0;
  double stp_convert_ms = 0;
  std::size_t convert_bytes = 0;
  bool granted = false;
};

Result run(bool threshold, std::uint64_t seed) {
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 3;
  cfg.watch.grid_cols = 10;
  cfg.watch.block_size_m = 100.0;
  cfg.watch.channels = 5;  // 150 entries
  cfg.paillier_bits = 1024;
  cfg.rsa_bits = 512;
  cfg.blind_bits = 128;
  cfg.mr_rounds = 12;
  cfg.threshold_stp = threshold;

  crypto::ChaChaRng rng{seed};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  core::PisaSystem system{cfg, {{0, radio::BlockId{0}}}, model, rng};
  auto& su = system.add_su(1);
  // Direct begin/finish_request calls below bypass the network key
  // directory, so prime the SDC with the SU key explicitly.
  system.sdc().register_su_key(1, su.public_key());
  system.pu_update(0, watch::PuTuning{radio::ChannelId{0}, 1e-6});

  watch::SuRequest request{1, radio::BlockId{29},
                           std::vector<double>(cfg.watch.channels, 0.01)};
  auto f = system.build_f(request);
  auto msg = su.prepare_request(f, 1);

  Result res;
  auto t0 = Clock::now();
  auto conv = system.sdc().begin_request(msg);
  res.sdc_phase1_ms = ms_since(t0);
  res.convert_bytes =
      conv.encode(system.stp().group_key().ciphertext_bytes()).size();
  t0 = Clock::now();
  auto xresp = system.stp().convert(conv);
  res.stp_convert_ms = ms_since(t0);
  auto resp = system.sdc().finish_request(xresp);
  res.granted = su.process_response(resp, system.sdc().license_key()).granted;
  return res;
}

}  // namespace

int main() {
  std::printf("Threshold-STP ablation (150 entries, n=1024)\n");
  std::printf("============================================\n\n");
  auto classic = run(false, 11);
  auto threshold = run(true, 11);

  std::printf("%-26s %14s %14s %10s\n", "", "classic STP", "threshold STP", "ratio");
  std::printf("%-26s %12.1fms %12.1fms %9.2fx\n", "SDC phase-1 (blinding)",
              classic.sdc_phase1_ms, threshold.sdc_phase1_ms,
              threshold.sdc_phase1_ms / classic.sdc_phase1_ms);
  std::printf("%-26s %12.1fms %12.1fms %9.2fx\n", "STP conversion",
              classic.stp_convert_ms, threshold.stp_convert_ms,
              threshold.stp_convert_ms / classic.stp_convert_ms);
  std::printf("%-26s %11.2fMB %11.2fMB %9.2fx\n", "SDC -> STP traffic",
              static_cast<double>(classic.convert_bytes) / 1e6,
              static_cast<double>(threshold.convert_bytes) / 1e6,
              static_cast<double>(threshold.convert_bytes) /
                  static_cast<double>(classic.convert_bytes));
  std::printf("%-26s %14s %14s\n", "decision",
              classic.granted ? "GRANTED" : "DENIED",
              threshold.granted ? "GRANTED" : "DENIED");
  std::printf("\nWhat it buys: the STP alone can no longer decrypt any stored "
              "PU/SU ciphertext.\n");
  return classic.granted == threshold.granted ? 0 : 1;
}
