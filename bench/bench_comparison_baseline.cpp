// PISA's blinding trick vs bitwise secure comparison (the approach of the
// paper's refs [12], [13], [18] that §IV-B argues is "extremely complex and
// time-consuming").
//
// Both pipelines decide sign(I) for one interference-budget entry:
//   PISA      : 1 owner encryption; SDC ≈ 4 homomorphic ops (⊗X, ⊖, ⊗α, ε);
//               STP 1 decryption + 1 re-encryption.
//   bitwise ℓ : ℓ owner encryptions; SDC ≈ 3ℓ homomorphic ops + ℓ blinding
//               exponentiations; STP ℓ decryptions.
// The gap must widen linearly in the bit width ℓ (paper uses ℓ = 60).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bigint/prime.hpp"
#include "core/comparison_baseline.hpp"
#include "crypto/chacha_rng.hpp"

namespace {

using namespace pisa;

constexpr std::size_t kKeyBits = 1024;

crypto::ChaChaRng& rng() {
  static crypto::ChaChaRng r{std::uint64_t{0xC0817A}};
  return r;
}

const crypto::PaillierKeyPair& keys() {
  static crypto::PaillierKeyPair kp = crypto::paillier_generate(kKeyBits, rng(), 16);
  return kp;
}

// --- PISA per-entry pipeline (eqs. (11)-(16) for a single (c, b) entry).

void BM_PisaEntryOwnerEncrypt(benchmark::State& state) {
  const auto& kp = keys();
  bn::BigUint f = bn::random_bits(rng(), 60);
  for (auto _ : state) benchmark::DoNotOptimize(kp.pk.encrypt(f, rng()));
}
BENCHMARK(BM_PisaEntryOwnerEncrypt)->Unit(benchmark::kMillisecond);

void BM_PisaEntrySdcBlind(benchmark::State& state) {
  const auto& kp = keys();
  auto n_ct = kp.pk.encrypt(bn::random_bits(rng(), 60), rng());
  auto f_ct = kp.pk.encrypt(bn::random_bits(rng(), 40), rng());
  bn::BigUint x{202};
  for (auto _ : state) {
    auto r = kp.pk.scalar_mul(x, f_ct);
    auto i = kp.pk.sub(n_ct, r);
    bn::BigUint alpha = bn::random_bits(rng(), 128);
    alpha.set_bit(127);
    bn::BigUint beta = bn::random_below(rng(), alpha - bn::BigUint{1}) + bn::BigUint{1};
    auto v = kp.pk.sub(kp.pk.scalar_mul(alpha, i), kp.pk.encrypt_deterministic(beta));
    if (rng().next_u64() & 1) v = kp.pk.negate(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_PisaEntrySdcBlind)->Unit(benchmark::kMillisecond);

void BM_PisaEntryStpConvert(benchmark::State& state) {
  const auto& kp = keys();
  auto v = kp.pk.encrypt(bn::random_bits(rng(), 100), rng());
  for (auto _ : state) {
    auto plain = kp.sk.decrypt_signed(v);
    bn::BigInt x = plain.sign() > 0 ? bn::BigInt{1} : bn::BigInt{-1};
    benchmark::DoNotOptimize(kp.pk.encrypt_signed(x, rng()));
  }
}
BENCHMARK(BM_PisaEntryStpConvert)->Unit(benchmark::kMillisecond);

// --- Bitwise baseline, parameterized by bit width.

void BM_BitwiseOwnerEncrypt(benchmark::State& state) {
  const auto& kp = keys();
  core::BitwiseComparisonBaseline cmp{kp.pk, static_cast<unsigned>(state.range(0))};
  std::uint64_t v = rng().next_u64() & ((1ULL << state.range(0)) - 1);
  for (auto _ : state) benchmark::DoNotOptimize(cmp.encrypt_bits(v, rng()));
  state.counters["ciphertexts"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BitwiseOwnerEncrypt)->Arg(8)->Arg(16)->Arg(32)->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_BitwiseSdcCompare(benchmark::State& state) {
  const auto& kp = keys();
  auto width = static_cast<unsigned>(state.range(0));
  core::BitwiseComparisonBaseline cmp{kp.pk, width};
  std::uint64_t mask = (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
  auto bits = cmp.encrypt_bits(rng().next_u64() & mask, rng());
  std::uint64_t y = rng().next_u64() & mask;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmp.compare_gt_public(bits, y, rng()));
  }
}
BENCHMARK(BM_BitwiseSdcCompare)->Arg(8)->Arg(16)->Arg(32)->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_BitwiseStpDecrypt(benchmark::State& state) {
  const auto& kp = keys();
  auto width = static_cast<unsigned>(state.range(0));
  core::BitwiseComparisonBaseline cmp{kp.pk, width};
  std::uint64_t mask = (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
  auto garbled =
      cmp.compare_gt_public(cmp.encrypt_bits(rng().next_u64() & mask, rng()),
                            rng().next_u64() & mask, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BitwiseComparisonBaseline::any_zero(garbled, kp.sk));
  }
}
BENCHMARK(BM_BitwiseStpDecrypt)->Arg(8)->Arg(16)->Arg(32)->Arg(60)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return pisa::benchjson::run_benchmarks_to_json(argc, argv,
                                                 "BENCH_comparison_baseline.json");
}
