// Operating-regime workload: a compressed "day in the life" of a PISA
// deployment at the paper's §VI-A rates.
//
// The paper defends PISA's per-operation costs by arguing they are paid
// rarely: TV viewers switch (virtual) channels only 2.3–2.7 times per hour,
// and SUs re-request on configuration changes. This bench runs a generated
// schedule at exactly those rates through the full encrypted pipeline
// (scaled grid, n = 1024) and reports the aggregate spectrum-manager view:
// decisions, oracle agreement, wall-clock compute and bytes moved per
// simulated hour.
#include <chrono>
#include <cstdio>

#include "core/scenario.hpp"
#include "crypto/chacha_rng.hpp"
#include "radio/pathloss.hpp"

namespace {

using namespace pisa;
using Clock = std::chrono::steady_clock;

}  // namespace

int main() {
  std::printf("A (compressed) day of PISA operation — paper SVI-A rates\n");
  std::printf("========================================================\n\n");

  core::PisaConfig cfg;
  cfg.watch.grid_rows = 3;
  cfg.watch.grid_cols = 8;
  cfg.watch.block_size_m = 200.0;
  cfg.watch.channels = 4;
  cfg.paillier_bits = 1024;
  cfg.rsa_bits = 512;
  cfg.blind_bits = 96;
  cfg.mr_rounds = 12;

  crypto::ChaChaRng rng{std::uint64_t{0xDAE}};
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites;
  for (std::uint32_t i = 0; i < 4; ++i) sites.push_back({i, radio::BlockId{i * 6}});

  core::PisaSystem system{cfg, sites, model, rng};
  for (std::uint32_t su = 0; su < 3; ++su) system.add_su(1000 + su);
  watch::PlainWatch oracle{cfg.watch, sites, model};
  core::ScenarioRunner runner{system, oracle};

  const double hours = 6.0;
  auto events = core::make_viewing_workload(
      cfg, /*viewers=*/4, /*requesters=*/3, hours,
      /*switches_per_hour=*/2.5,  // paper: 2.3–2.7 switches/viewer-hour
      /*request_period_s=*/1200.0, 20260706);

  std::printf("Schedule: %zu events over %.1f simulated hours "
              "(4 viewers @ 2.5 switches/h, 3 SUs re-requesting every 20 min)\n\n",
              events.size(), hours);

  auto t0 = Clock::now();
  auto stats = runner.run(std::move(events));
  double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::printf("PU updates processed        : %zu\n", stats.pu_updates);
  std::printf("SU requests processed       : %zu (%.0f%% granted)\n",
              stats.requests, 100.0 * stats.grant_rate());
  std::printf("Oracle mismatches           : %zu (must be 0)\n",
              stats.oracle_mismatches);
  std::printf("Traffic                     : %.1f MB total, %.2f MB per "
              "simulated hour\n",
              static_cast<double>(stats.bytes_on_wire) / 1e6,
              static_cast<double>(stats.bytes_on_wire) / 1e6 / hours);
  std::printf("Compute (1 core, n=1024)    : %.1f s total, %.1f s per "
              "simulated hour\n", wall_s, wall_s / hours);
  std::printf("\nAt the paper's rates the SDC spends ~%.1f%% of real time on "
              "crypto at this scale —\nthe rarity of PU switches is what "
              "makes encrypted allocation practical.\n",
              100.0 * wall_s / (hours * 3600.0));
  return stats.oracle_mismatches == 0 ? 0 : 1;
}
