// Substrate ablation: the bignum layer that replaces GMP (DESIGN.md §2).
//
// Everything in Table II reduces to these primitives; this bench pins their
// scaling so the substitution's constant factor is visible: multiplication
// (schoolbook → Karatsuba crossover at 2048 bits), Knuth-D division, and
// Montgomery exponentiation (the cost driver: one 2048-bit encryption is
// one ~2048-bit-exponent modexp over a 4096-bit modulus).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "bigint/biguint.hpp"
#include "bigint/modular.hpp"
#include "bigint/montgomery.hpp"
#include "bigint/prime.hpp"
#include "bigint/random_source.hpp"

namespace {

using namespace pisa::bn;

SplitMix64Random& rng() {
  static SplitMix64Random r{0xB16};
  return r;
}

BigUint value(std::size_t bits) {
  BigUint v = random_bits(rng(), bits);
  v.set_bit(bits - 1);
  return v;
}

void BM_Multiply(benchmark::State& state) {
  auto bits = static_cast<std::size_t>(state.range(0));
  BigUint a = value(bits), b = value(bits);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_Multiply)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

void BM_DivMod(benchmark::State& state) {
  auto bits = static_cast<std::size_t>(state.range(0));
  BigUint num = value(2 * bits), den = value(bits);
  for (auto _ : state) benchmark::DoNotOptimize(BigUint::divmod(num, den));
}
BENCHMARK(BM_DivMod)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontgomeryMul(benchmark::State& state) {
  auto bits = static_cast<std::size_t>(state.range(0));
  BigUint m = value(bits);
  m.set_bit(0);
  Montgomery mont{m};
  BigUint a = value(bits - 1), b = value(bits - 1);
  for (auto _ : state) benchmark::DoNotOptimize(mont.mul(a, b));
}
BENCHMARK(BM_MontgomeryMul)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontgomerySqr(benchmark::State& state) {
  // Dedicated squaring kernel: ~half the limb products of mul; squarings
  // dominate every exponentiation ladder.
  auto bits = static_cast<std::size_t>(state.range(0));
  BigUint m = value(bits);
  m.set_bit(0);
  Montgomery mont{m};
  BigUint a = value(bits - 1);
  for (auto _ : state) benchmark::DoNotOptimize(mont.sqr(a));
}
BENCHMARK(BM_MontgomerySqr)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontgomeryPow(benchmark::State& state) {
  // The Paillier encryption workhorse: |n|-bit exponent mod an |n²|-bit
  // modulus at Arg = |n²|.
  auto bits = static_cast<std::size_t>(state.range(0));
  BigUint m = value(bits);
  m.set_bit(0);
  Montgomery mont{m};
  BigUint base = value(bits - 1);
  BigUint exp = value(bits / 2);
  for (auto _ : state) benchmark::DoNotOptimize(mont.pow(base, exp));
  state.counters["exp_bits"] = static_cast<double>(bits / 2);
}
BENCHMARK(BM_MontgomeryPow)->Arg(1024)->Arg(2048)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_MontgomeryPow2(benchmark::State& state) {
  // Shamir/Straus a^x·b^y: one shared squaring ladder — compare against
  // twice BM_MontgomeryPow plus a mul.
  auto bits = static_cast<std::size_t>(state.range(0));
  BigUint m = value(bits);
  m.set_bit(0);
  Montgomery mont{m};
  BigUint a = value(bits - 1), b = value(bits - 2);
  BigUint x = value(bits / 2), y = value(bits / 2);
  for (auto _ : state) benchmark::DoNotOptimize(mont.pow2(a, x, b, y));
  state.counters["exp_bits"] = static_cast<double>(bits / 2);
}
BENCHMARK(BM_MontgomeryPow2)->Arg(1024)->Arg(2048)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ModInverse(benchmark::State& state) {
  // Homomorphic subtraction's cost: one extended-Euclid inverse mod n².
  auto bits = static_cast<std::size_t>(state.range(0));
  BigUint m = value(bits);
  m.set_bit(0);
  BigUint a = random_coprime(rng(), m);
  for (auto _ : state) benchmark::DoNotOptimize(mod_inverse(a, m));
}
BENCHMARK(BM_ModInverse)->Arg(1024)->Arg(2048)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_MillerRabinRound(benchmark::State& state) {
  auto bits = static_cast<std::size_t>(state.range(0));
  BigUint p = random_prime(rng(), bits, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_probable_prime(p, rng(), 1));
  }
}
BENCHMARK(BM_MillerRabinRound)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_DecimalConversion(benchmark::State& state) {
  BigUint v = value(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(v.to_dec());
}
BENCHMARK(BM_DecimalConversion)->Arg(512)->Arg(2048);

}  // namespace

int main(int argc, char** argv) {
  return pisa::benchjson::run_benchmarks_to_json(argc, argv,
                                                 "BENCH_bigint.json");
}
