// Figures 8-11 reproduction: the four USRP testbed scenarios (paper §VI-B),
// driven through the channel simulator plus the real PISA protocol.
//
// Paper setup: two SU USRP N210s at different distances from a PU X310
// monitor, WiFi channel 6 (2.437 GHz, 20 MHz sample rate), DELL laptop SDC.
//   Scenario 1 (Fig. 8):  PU idle; both SUs transmit; two packets within
//                         ~0.35 ms, visibly different amplitudes.
//   Scenario 2 (Fig. 10): PU claims the channel; SDC tells SUs to stop.
//   Scenario 3 (Fig. 11): both SUs send encrypted transmission requests.
//   Scenario 4 (Fig. 9):  SDC grants only the non-interfering SU; the
//                         granted SU sends ~11 packets in 20 ms.
// Our substitution (DESIGN.md §2): free-space channel model + envelope
// capture replaces the SDR hardware; the protocol path is the real PISA
// implementation at n = 1024.
#include <cstdio>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/chacha_rng.hpp"
#include "radio/channel_sim.hpp"
#include "radio/pathloss.hpp"

namespace {

using namespace pisa;

constexpr double kCh6Mhz = 2437.0;
constexpr double kSampleRateHz = 20e6;  // paper's 20 MHz

}  // namespace

int main() {
  std::printf("SDR experiment reproduction (Figures 8-11)\n");
  std::printf("==========================================\n\n");

  radio::FreeSpaceModel channel_model{kCh6Mhz};
  // PU monitor at the origin; SU1 near (strong interferer), SU2 far (weak).
  radio::ChannelSimulator sim{channel_model, 0.0, 0.0};
  auto su1 = sim.add_transmitter({"SU1", 8.0, 0.0, 15.0, true, 80.0, 350.0, 0.0});
  auto su2 = sim.add_transmitter({"SU2", 60.0, 0.0, 15.0, true, 80.0, 350.0, 170.0});

  // --- Scenario 1 (Figure 8): two packets in ~0.35 ms, unequal amplitudes.
  std::printf("Scenario 1 (Fig. 8): PU idle, both SUs transmitting\n");
  auto trace1 = sim.capture(350.0, kSampleRateHz);
  auto stats1 = sim.analyze(trace1);
  double a1 = std::sqrt(sim.rx_power_mw(su1));
  double a2 = std::sqrt(sim.rx_power_mw(su2));
  std::printf("  packets observed in 0.35 ms window : %d   (paper: 2)\n",
              stats1.packets_observed);
  std::printf("  SU1 envelope amplitude             : %.3e\n", a1);
  std::printf("  SU2 envelope amplitude             : %.3e\n", a2);
  std::printf("  amplitude ratio (distance 8m/60m)  : %.2f  (paper: visibly "
              "different)\n\n", a1 / a2);

  // --- PISA deployment for the decision-making scenarios.
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 1;
  cfg.watch.grid_cols = 8;   // a strip of 10 m blocks along the bench
  cfg.watch.block_size_m = 10.0;
  cfg.watch.channels = 1;    // "channel 6" is the only contested channel
  cfg.paillier_bits = 1024;
  cfg.rsa_bits = 512;
  cfg.blind_bits = 96;
  cfg.mr_rounds = 12;

  crypto::ChaChaRng rng{std::uint64_t{6}};
  // Short-range 2.4 GHz propagation: log-distance with indoor-ish exponent.
  radio::LogDistanceModel su_model{kCh6Mhz, 3.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}}};
  core::PisaSystem system{cfg, sites, su_model, rng};

  // --- Scenario 2 (Figure 10): PU claims the channel via encrypted update.
  std::printf("Scenario 2 (Fig. 10): PU starts using the channel\n");
  watch::PuTuning tuning{radio::ChannelId{0}, 2e-7};  // -67 dBm reception
  system.pu_update(0, tuning);
  sim.transmitter(su1).active = false;  // SDC halts secondary transmissions
  sim.transmitter(su2).active = false;
  auto quiet = sim.analyze(sim.capture(2000.0, 2e6));
  std::printf("  SDC received encrypted update; SUs silenced\n");
  std::printf("  packets on channel after update    : %d   (PU holds the "
              "channel)\n\n", quiet.packets_observed);

  // --- Scenario 3 (Figure 11): both SUs submit encrypted requests.
  std::printf("Scenario 3 (Fig. 11): SUs send transmission requests\n");
  system.add_su(1);
  system.add_su(2);
  // SU1 one block from the PU at full power; SU2 six blocks away at low
  // power — mirroring the near/far bench geometry.
  watch::SuRequest req1{1, radio::BlockId{1}, {50.0}};
  watch::SuRequest req2{2, radio::BlockId{6}, {0.05}};
  std::printf("  SU1: block 1, EIRP 50 mW   -> request prepared & acked\n");
  std::printf("  SU2: block 6, EIRP 0.05 mW -> request prepared & acked\n\n");

  // --- Scenario 4 (Figure 9): SDC decides; only the harmless SU transmits.
  std::printf("Scenario 4 (Fig. 9): SDC processes both requests\n");
  auto out1 = system.su_request(req1);
  auto out2 = system.su_request(req2);
  std::printf("  SU1 decision: %s   (paper: the strong interferer is denied)\n",
              out1.granted ? "GRANTED" : "DENIED");
  std::printf("  SU2 decision: %s   (paper: SU2 is allowed)\n",
              out2.granted ? "GRANTED" : "DENIED");

  sim.transmitter(su2).active = out2.granted;
  sim.transmitter(su1).active = out1.granted;
  // Granted SU sends ~11 packets in 20 ms: bursts every 1.9 ms.
  sim.transmitter(su2).period_us = 1900.0;
  sim.transmitter(su2).burst_us = 200.0;
  sim.transmitter(su2).offset_us = 0.0;
  auto trace4 = sim.analyze(sim.capture(20'000.0, 2e6));
  std::printf("  packets from granted SU in 20 ms   : %d   (paper: ~11)\n",
              trace4.packets_observed);

  std::printf("\nProtocol cost at this scale (n=%zu, %zu budget entries):\n",
              cfg.paillier_bits,
              cfg.watch.channels * cfg.watch.grid_rows * cfg.watch.grid_cols);
  const auto& stats = system.sdc().stats();
  std::printf("  last SDC phase-1 %.1f ms, phase-2 %.1f ms, PU update %.1f ms\n",
              stats.phase1.last_ms, stats.phase2.last_ms, stats.update.last_ms);
  std::printf("\nDone.\n");
  return 0;
}
