// Extension ablation: Damgård–Jurik generalized Paillier.
//
// PISA carries 60-bit quantized powers in 2048-bit Paillier plaintext slots
// — a 2x ciphertext expansion on |n| bits, but a ~68x expansion on the bits
// that actually matter. Damgård–Jurik (s > 1) is the standard knob: one
// ciphertext of (s+1)·|n| bits carries s·|n| plaintext bits (expansion
// (s+1)/s), enabling e.g. batched W-columns per ciphertext in a future
// packed variant. This bench measures the trade: encryption/decryption cost
// vs payload capacity across s.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bigint/prime.hpp"
#include "crypto/chacha_rng.hpp"
#include "crypto/damgard_jurik.hpp"

namespace {

using namespace pisa;

constexpr std::size_t kKeyBits = 1024;

crypto::ChaChaRng& rng() {
  static crypto::ChaChaRng r{std::uint64_t{0xD1}};
  return r;
}

const crypto::DamgardJurikKeyPair& keys(std::size_t s) {
  static std::map<std::size_t, crypto::DamgardJurikKeyPair> cache;
  auto it = cache.find(s);
  if (it == cache.end()) {
    it = cache.emplace(s, crypto::damgard_jurik_generate(kKeyBits, s, rng(), 16))
             .first;
  }
  return it->second;
}

void BM_DjEncrypt(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  bn::BigUint m = bn::random_below(rng(), kp.pk.plaintext_modulus());
  for (auto _ : state) benchmark::DoNotOptimize(kp.pk.encrypt(m, rng()));
  state.counters["plaintext_bits"] =
      static_cast<double>(kp.pk.plaintext_bytes() * 8);
  state.counters["expansion"] = kp.pk.expansion();
}
BENCHMARK(BM_DjEncrypt)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DjDecrypt(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto ct = kp.pk.encrypt(bn::random_below(rng(), kp.pk.plaintext_modulus()), rng());
  for (auto _ : state) benchmark::DoNotOptimize(kp.sk.decrypt(ct));
}
BENCHMARK(BM_DjDecrypt)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DjHomomorphicAdd(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto a = kp.pk.encrypt(bn::BigUint{1}, rng());
  auto b = kp.pk.encrypt(bn::BigUint{2}, rng());
  for (auto _ : state) benchmark::DoNotOptimize(kp.pk.add(a, b));
}
BENCHMARK(BM_DjHomomorphicAdd)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Throughput view: microseconds of encryption per useful plaintext *byte* —
// the number that decides whether fatter ciphertexts pay off.
void BM_DjEncryptPerPayloadByte(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  bn::BigUint m = bn::random_below(rng(), kp.pk.plaintext_modulus());
  for (auto _ : state) benchmark::DoNotOptimize(kp.pk.encrypt(m, rng()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kp.pk.plaintext_bytes()));
}
BENCHMARK(BM_DjEncryptPerPayloadByte)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return pisa::benchjson::run_benchmarks_to_json(argc, argv,
                                                 "BENCH_damgard_jurik.json");
}
