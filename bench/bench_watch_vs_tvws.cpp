// §I motivation reproduction: dynamic exclusion zones (WATCH) vs the static
// TV-white-space model.
//
// The paper motivates WATCH/PISA with the observation that TVWS leaves
// "extremely limited white space availability" in populated areas although
// "vast regions in the range of TV transmitters [have] no active TV
// receivers on multiple channels". We measure:
//   * TVWS availability: (channel, block) pairs outside every transmitter
//     protection contour;
//   * WATCH availability: grant rate for a reference 100 mW SU as a function
//     of how many receivers are actually watching.
// WATCH's availability must dominate TVWS's and degrade only with *active*
// receivers.
#include <cstdio>
#include <vector>

#include "bigint/random_source.hpp"
#include "radio/pathloss.hpp"
#include "watch/plain_watch.hpp"
#include "watch/tvws_baseline.hpp"

namespace {

using namespace pisa;
using radio::BlockId;
using radio::ChannelId;

}  // namespace

int main() {
  std::printf("Spectrum re-use: WATCH dynamic exclusion vs static TVWS\n");
  std::printf("=======================================================\n\n");

  watch::WatchConfig cfg;
  cfg.grid_rows = 20;
  cfg.grid_cols = 30;
  cfg.block_size_m = 100.0;  // 2 km x 3 km suburb
  cfg.channels = 10;

  radio::ExtendedHataModel tv_model{600.0, 200.0, 10.0};
  radio::ExtendedHataModel su_model{600.0, 30.0, 10.0};

  // Three TV towers covering the whole area on three channels.
  std::vector<watch::TvTransmitter> towers{
      {{1500.0, 1000.0}, ChannelId{1}, 80.0},
      {{500.0, 500.0}, ChannelId{4}, 80.0},
      {{2500.0, 1500.0}, ChannelId{7}, 80.0},
  };
  watch::TvwsBaseline tvws{cfg, towers, tv_model};

  auto total = tvws.total_pairs();
  auto tvws_avail = tvws.available_pairs();
  std::printf("TVWS baseline: %zu of %zu (channel, block) pairs available "
              "(%.1f%%)\n", tvws_avail, total,
              100.0 * static_cast<double>(tvws_avail) / static_cast<double>(total));
  std::printf("  -> every broadcast channel is lost across its whole "
              "contour, watched or not.\n\n");

  // WATCH: availability depends on *active receivers*, not towers.
  // 60 registered receiver sites scattered over the area.
  bn::SplitMix64Random rng{99};
  std::vector<watch::PuSite> sites;
  for (std::uint32_t i = 0; i < 60; ++i) {
    sites.push_back({i, BlockId{static_cast<std::uint32_t>(
                            rng.next_u64() % (cfg.grid_rows * cfg.grid_cols))}});
  }
  watch::PlainWatch watch_sys{cfg, sites, su_model};

  std::printf("%-24s %16s %16s\n", "active TV receivers",
              "WATCH grant rate", "TVWS grant rate");
  for (std::size_t active : {0u, 5u, 15u, 30u, 60u}) {
    for (std::uint32_t i = 0; i < sites.size(); ++i) {
      watch::PuTuning tuning;
      if (i < active) {
        tuning.channel = ChannelId{static_cast<std::uint32_t>(
            rng.next_u64() % cfg.channels)};
        tuning.signal_mw = 1e-6;
      }
      watch_sys.pu_update(i, tuning);
    }
    // Reference workload: a 100 mW SU probing every 8th block, each channel
    // individually.
    std::size_t watch_grants = 0, tvws_grants = 0, probes = 0;
    for (std::uint32_t b = 0; b < cfg.grid_rows * cfg.grid_cols; b += 8) {
      for (std::uint32_t c = 0; c < cfg.channels; ++c) {
        std::vector<double> eirp(cfg.channels, 0.0);
        eirp[c] = 100.0;
        ++probes;
        if (watch_sys.process_request({1000, BlockId{b}, eirp}).granted)
          ++watch_grants;
        if (tvws.channel_available(ChannelId{c}, BlockId{b})) ++tvws_grants;
      }
    }
    std::printf("%-24zu %15.1f%% %15.1f%%\n", active,
                100.0 * static_cast<double>(watch_grants) / static_cast<double>(probes),
                100.0 * static_cast<double>(tvws_grants) / static_cast<double>(probes));
  }

  std::printf("\nWATCH re-purposes every channel nobody is actively watching; "
              "TVWS cannot.\n");
  return 0;
}
