// Design ablation: the Δ_redn aggregate-interference margin (eq. (1)).
//
// WATCH admits SUs one by one against a per-SU budget that already reserves
// Δ_redn of headroom for *other* SUs. This bench sweeps Δ_redn and reports,
// for a fixed candidate workload:
//   * how many SUs get admitted (capacity cost of the margin), and
//   * the realized worst-case PU SINR margin with all admitted SUs on air
//     simultaneously (what the margin buys).
// Expected shape: Δ_redn = 0 over-admits and can drive the realized margin
// negative under aggregation; growing Δ_redn trades admissions for safety.
#include <cstdio>
#include <vector>

#include "bigint/random_source.hpp"
#include "radio/pathloss.hpp"
#include "watch/aggregate.hpp"

namespace {

using namespace pisa;
using radio::BlockId;
using radio::ChannelId;

}  // namespace

int main() {
  std::printf("Aggregate-interference margin ablation (eq. (1) Δ_redn)\n");
  std::printf("=======================================================\n\n");

  radio::ExtendedHataModel model{600.0, 30.0, 10.0};

  // Worst case for aggregation: K SUs, each pushed (by binary search) to the
  // highest EIRP the per-SU budget still admits. WATCH grants do not shrink
  // the budget — the Δ_redn headroom is the *only* protection against their
  // sum. Note eq. (1) adds Δ_redn to Δ_TV_SINR as a *linear ratio*: to
  // shelter K maxed-out SUs it must satisfy
  //   Δ_SINR + Δ_redn >= K · Δ_SINR  ⇔  Δ_redn >= (K−1)·Δ_SINR,
  // i.e. ≈ 23 dB + 10·log10(K−1), not a few dB. The sweep shows exactly
  // where protection kicks in and what it costs in per-SU power.
  constexpr int kNumSus = 5;

  std::printf("%-14s %10s %18s %22s %12s\n", "Δ_redn (dB)", "SUs on air",
              "per-SU EIRP (mW)", "worst PU margin (dB)", "protected");
  for (double redn_db : {0.0, 10.0, 23.0, 26.0, 29.0, 32.0}) {
    watch::WatchConfig cfg;
    cfg.grid_rows = 20;
    cfg.grid_cols = 30;
    cfg.block_size_m = 100.0;
    cfg.channels = 1;
    cfg.delta_redn_db = redn_db;

    std::vector<watch::PuSite> sites{{0, BlockId{0}}};
    watch::PlainWatch watch_sys{cfg, sites, model};
    watch_sys.pu_update(0, watch::PuTuning{ChannelId{0}, 1e-6});

    // K SUs at the same far-corner distance, each at its individual limit.
    std::vector<watch::SuRequest> candidates;
    double eirp_admitted = 0;
    for (int k = 0; k < kNumSus; ++k) {
      auto block = BlockId{static_cast<std::uint32_t>(19 * 30 + 25 + k)};
      double lo = 0, hi = 4000;
      for (int iter = 0; iter < 40; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (watch_sys.process_request({900, block, {mid}}).granted)
          lo = mid;
        else
          hi = mid;
      }
      if (lo > 0) {
        candidates.push_back({static_cast<std::uint32_t>(900 + k), block, {lo}});
        eirp_admitted = lo;
      }
    }

    auto admission = watch::admit_sequentially(watch_sys, candidates);
    std::vector<watch::PuTuning> tunings{{ChannelId{0}, 1e-6}};
    auto exposures = watch::compute_exposures(cfg, sites, tunings,
                                              admission.admitted, model,
                                              cfg.delta_tv_sinr_db);
    double margin = watch::worst_margin_db(exposures, cfg.delta_tv_sinr_db);
    std::printf("%-14.1f %10zu %18.4f %22.2f %12s\n", redn_db,
                admission.admitted.size(), eirp_admitted, margin,
                margin >= 0 ? "yes" : "NO");
  }

  std::printf("\nProtection flips exactly where Δ_SINR + Δ_redn crosses "
              "%d x Δ_SINR (Δ_redn ≈ %.1f dB);\neach protected row pays for "
              "it with ~%dx lower per-SU EIRP.\n",
              kNumSus, 23.0 + 10.0 * std::log10(kNumSus - 1.0), kNumSus);
  return 0;
}
