// Shared JSON emitter for the google-benchmark microbench binaries
// (bench_bigint, bench_paillier). Same hand-rolled fprintf style as
// bench_system.cpp's BENCH_system.json writer, so the committed perf
// snapshots all parse the same way.
//
// Usage: replace BENCHMARK_MAIN() with
//   int main(int argc, char** argv) {
//     return pisa::benchjson::run_benchmarks_to_json(argc, argv, "BENCH_x.json");
//   }
// The binary then accepts every --benchmark_* flag plus `--quick`, which
// caps per-benchmark measurement time for CI perf-smoke runs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace pisa::benchjson {

struct Row {
  std::string name;
  double ns_per_iter;
  long long iterations;
};

// Console output stays intact; every successful run is also collected for
// the JSON snapshot.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      rows.push_back({run.benchmark_name(),
                      run.real_accumulated_time * 1e9 /
                          static_cast<double>(run.iterations),
                      static_cast<long long>(run.iterations)});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Row> rows;
};

inline void write_json(const char* path, bool quick,
                       const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"quick\": %s,\n  \"results\": [\n",
               quick ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(
        f, "    {\"name\": \"%s\", \"ns_per_iter\": %.1f, \"iterations\": %lld}%s\n",
        rows[i].name.c_str(), rows[i].ns_per_iter, rows[i].iterations,
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

inline int run_benchmarks_to_json(int argc, char** argv,
                                  const char* json_path) {
  bool quick = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--quick") {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  // Short measurement windows in quick mode: enough for a smoke signal,
  // cheap enough for every CI run.
  static char min_time_flag[] = "--benchmark_min_time=0.05";
  if (quick) args.push_back(min_time_flag);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(json_path, quick, reporter.rows);
  std::printf("Machine-readable results written to %s\n", json_path);
  return 0;
}

}  // namespace pisa::benchjson
