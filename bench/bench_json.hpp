// Shared JSON emission for every bench binary that writes a BENCH_*.json
// perf snapshot, so the committed snapshots all parse the same way (and
// scripts/check_perf_regression.py only needs one dialect).
//
// Two layers:
//   * JsonFields / write_row_array — a flat ordered field list plus an
//     array-of-rows writer. Structured emitters (bench_system) build their
//     rows from these instead of hand-rolling fprintf format strings.
//   * run_benchmarks_to_json — drop-in BENCHMARK_MAIN() replacement for the
//     google-benchmark binaries (bench_bigint, bench_paillier,
//     bench_comparison_baseline, bench_damgard_jurik):
//       int main(int argc, char** argv) {
//         return pisa::benchjson::run_benchmarks_to_json(argc, argv, "BENCH_x.json");
//       }
//     The binary then accepts every --benchmark_* flag plus `--quick`, which
//     caps per-benchmark measurement time for CI perf-smoke runs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pisa::benchjson {

/// Ordered key → pre-formatted-value list for one flat JSON row. All the
/// BENCH_*.json rows are flat objects of scalars, which is all this needs
/// to support.
class JsonFields {
 public:
  void add(std::string key, std::size_t v) {
    kv_.emplace_back(std::move(key), std::to_string(v));
  }
  void add(std::string key, long long v) {
    kv_.emplace_back(std::move(key), std::to_string(v));
  }
  void add(std::string key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    kv_.emplace_back(std::move(key), buf);
  }
  void add(std::string key, const std::string& v) {
    kv_.emplace_back(std::move(key), "\"" + v + "\"");
  }

  void emit(std::FILE* f, const char* indent) const {
    std::fprintf(f, "%s{", indent);
    for (std::size_t i = 0; i < kv_.size(); ++i)
      std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ", kv_[i].first.c_str(),
                   kv_[i].second.c_str());
    std::fprintf(f, "}");
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// `"name": [ {row}, {row}, ... ]` with one row per line; `last` controls
/// the trailing comma at the enclosing-object level.
inline void write_row_array(std::FILE* f, const char* name,
                            const std::vector<JsonFields>& rows, bool last) {
  std::fprintf(f, "  \"%s\": [\n", name);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].emit(f, "    ");
    std::fprintf(f, "%s\n", i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]%s\n", last ? "" : ",");
}

// ---- google-benchmark front end ------------------------------------------

struct Row {
  std::string name;
  double ns_per_iter;
  long long iterations;
};

// Console output stays intact; every successful run is also collected for
// the JSON snapshot.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      rows.push_back({run.benchmark_name(),
                      run.real_accumulated_time * 1e9 /
                          static_cast<double>(run.iterations),
                      static_cast<long long>(run.iterations)});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Row> rows;
};

inline void write_json(const char* path, bool quick,
                       const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"quick\": %s,\n", quick ? "true" : "false");
  std::vector<JsonFields> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    JsonFields j;
    j.add("name", r.name);
    j.add("ns_per_iter", r.ns_per_iter);
    j.add("iterations", r.iterations);
    out.push_back(std::move(j));
  }
  write_row_array(f, "results", out, /*last=*/true);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Strips `--quick` from argv (mapping it to a short measurement window),
/// runs the registered benchmarks and writes the JSON snapshot.
inline int run_benchmarks_to_json(int argc, char** argv,
                                  const char* json_path) {
  bool quick = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--quick") {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  // Short measurement windows in quick mode: enough for a smoke signal,
  // cheap enough for every CI run.
  static char min_time_flag[] = "--benchmark_min_time=0.05";
  if (quick) args.push_back(min_time_flag);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(json_path, quick, reporter.rows);
  std::printf("Machine-readable results written to %s\n", json_path);
  return 0;
}

}  // namespace pisa::benchjson
