// Table II reproduction: Paillier cryptosystem micro-benchmarks.
//
// Paper (Dell i5-2400 @ 3.10 GHz, GMP, n = 2048 bits):
//   encryption 30.378 ms, decryption 21.170 ms, hom. addition 0.004 ms,
//   hom. subtraction 0.073 ms, scale (100-bit constant) 1.564 ms,
//   scale (full width) 18.867 ms; pk/sk 4096 bits, ciphertext 4096 bits.
//
// We sweep n ∈ {512, 1024, 2048} and add two ablations the paper motivates:
// CRT vs textbook decryption, and pooled (precomputed r^n) vs fresh
// rerandomization — the §VI-A "221 s → 11 s" trick at micro scale.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_json.hpp"
#include <memory>
#include <vector>

#include "bigint/prime.hpp"
#include "crypto/chacha_rng.hpp"
#include "crypto/packing.hpp"
#include "crypto/paillier.hpp"
#include "exec/thread_pool.hpp"

namespace {

using namespace pisa;

crypto::ChaChaRng& rng() {
  static crypto::ChaChaRng r{std::uint64_t{0xBE2C4}};
  return r;
}

const crypto::PaillierKeyPair& keys(std::size_t bits) {
  static std::map<std::size_t, crypto::PaillierKeyPair> cache;
  auto it = cache.find(bits);
  if (it == cache.end())
    it = cache.emplace(bits, crypto::paillier_generate(bits, rng(), 16)).first;
  return it->second;
}

void BM_KeyGeneration(benchmark::State& state) {
  auto bits = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::paillier_generate(bits, rng(), 16));
  }
}
BENCHMARK(BM_KeyGeneration)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Encryption(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  bn::BigUint m = bn::random_bits(rng(), 60);  // paper's 60-bit representation
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.encrypt(m, rng()));
  }
  state.counters["ciphertext_bits"] =
      static_cast<double>(kp.pk.ciphertext_bytes() * 8);
}
BENCHMARK(BM_Encryption)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_DecryptionCrt(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto ct = kp.pk.encrypt(bn::random_bits(rng(), 60), rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.sk.decrypt(ct));
  }
}
BENCHMARK(BM_DecryptionCrt)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_DecryptionTextbook(benchmark::State& state) {
  // Ablation: the paper's 21.17 ms figure is textbook λ/μ decryption; CRT
  // should win by ~4x.
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto ct = kp.pk.encrypt(bn::random_bits(rng(), 60), rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.sk.decrypt_no_crt(ct));
  }
}
BENCHMARK(BM_DecryptionTextbook)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_HomomorphicAddition(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto a = kp.pk.encrypt(bn::BigUint{123}, rng());
  auto b = kp.pk.encrypt(bn::BigUint{456}, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.add(a, b));
  }
}
BENCHMARK(BM_HomomorphicAddition)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_HomomorphicSubtraction(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto a = kp.pk.encrypt(bn::BigUint{1000}, rng());
  auto b = kp.pk.encrypt(bn::BigUint{1}, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.sub(a, b));
  }
}
BENCHMARK(BM_HomomorphicSubtraction)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_ScalarMul100Bit(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto ct = kp.pk.encrypt(bn::BigUint{7}, rng());
  bn::BigUint k = bn::random_bits(rng(), 100);  // paper's "100-bit constant"
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.scalar_mul(k, ct));
  }
}
BENCHMARK(BM_ScalarMul100Bit)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_ScalarMulFullWidth(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto ct = kp.pk.encrypt(bn::BigUint{7}, rng());
  bn::BigUint k = bn::random_below(rng(), kp.pk.n());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.scalar_mul(k, ct));
  }
}
BENCHMARK(BM_ScalarMulFullWidth)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_BlindEntryFused(benchmark::State& state) {
  // The SDC begin_request kernel (eqs. (11)+(14)): one Shamir/Straus double
  // exponentiation + one inverse, vs the chain below.
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto budget = kp.pk.encrypt(bn::BigUint{5000}, rng());
  auto f = kp.pk.encrypt(bn::BigUint{1}, rng());
  bn::BigUint x{40};
  bn::BigUint alpha = bn::random_bits(rng(), 128);
  alpha.set_bit(127);
  bn::BigUint beta = bn::random_below(rng(), alpha - bn::BigUint{1}) + bn::BigUint{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.blind_entry(budget, f, x, alpha, beta, 1));
  }
}
BENCHMARK(BM_BlindEntryFused)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_BlindEntryUnfused(benchmark::State& state) {
  // Ablation: the original scalar_mul/sub/scalar_mul/sub composition.
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto budget = kp.pk.encrypt(bn::BigUint{5000}, rng());
  auto f = kp.pk.encrypt(bn::BigUint{1}, rng());
  bn::BigUint x{40};
  bn::BigUint alpha = bn::random_bits(rng(), 128);
  alpha.set_bit(127);
  bn::BigUint beta = bn::random_below(rng(), alpha - bn::BigUint{1}) + bn::BigUint{1};
  for (auto _ : state) {
    auto i_ct = kp.pk.sub(budget, kp.pk.scalar_mul(x, f));
    benchmark::DoNotOptimize(kp.pk.sub(kp.pk.scalar_mul(alpha, i_ct),
                                       kp.pk.encrypt_deterministic(beta)));
  }
}
BENCHMARK(BM_BlindEntryUnfused)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_RerandomizeFresh(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto ct = kp.pk.encrypt(bn::BigUint{7}, rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.rerandomize(ct, rng()));
  }
}
BENCHMARK(BM_RerandomizeFresh)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_RerandomizePooled(benchmark::State& state) {
  // §VI-A: with r^n precomputed offline, rerandomization is one modular
  // multiplication — the same cost class as homomorphic addition.
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto ct = kp.pk.encrypt(bn::BigUint{7}, rng());
  auto factor = kp.pk.make_randomizer(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.rerandomize_with(ct, factor));
  }
}
BENCHMARK(BM_RerandomizePooled)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

// --- Batch pipeline (src/exec): the same kernels dispatched over a
// work-stealing pool. Arg pair = (key bits, threads). On a single-core host
// the >1-thread rows only show the dispatch overhead; with real cores the
// modexps scale near-linearly.

exec::ThreadPool* pool_for(std::size_t threads) {
  static std::map<std::size_t, std::unique_ptr<exec::ThreadPool>> cache;
  if (threads <= 1) return nullptr;
  auto it = cache.find(threads);
  if (it == cache.end())
    it = cache.emplace(threads, std::make_unique<exec::ThreadPool>(threads)).first;
  return it->second.get();
}

void BM_EncryptBatch64(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto* pool = pool_for(static_cast<std::size_t>(state.range(1)));
  std::vector<bn::BigUint> ms(64);
  for (auto& m : ms) m = bn::random_bits(rng(), 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.encrypt_batch(ms, rng(), pool));
  }
  state.counters["entries"] = 64;
}
BENCHMARK(BM_EncryptBatch64)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})
    ->Unit(benchmark::kMillisecond);

void BM_DecryptBatch64(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto* pool = pool_for(static_cast<std::size_t>(state.range(1)));
  std::vector<bn::BigUint> ms(64);
  for (auto& m : ms) m = bn::random_bits(rng(), 60);
  auto cts = kp.pk.encrypt_batch(ms, rng(), nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.sk.decrypt_batch(cts, pool));
  }
  state.counters["entries"] = 64;
}
BENCHMARK(BM_DecryptBatch64)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})
    ->Unit(benchmark::kMillisecond);

void BM_ScalarMulBatch64(benchmark::State& state) {
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto* pool = pool_for(static_cast<std::size_t>(state.range(1)));
  std::vector<bn::BigUint> ms(64, bn::BigUint{7});
  auto cts = kp.pk.encrypt_batch(ms, rng(), nullptr);
  std::vector<bn::BigUint> k{bn::random_bits(rng(), 100)};  // broadcast
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.scalar_mul_batch(k, cts, pool));
  }
  state.counters["entries"] = 64;
}
BENCHMARK(BM_ScalarMulBatch64)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})
    ->Unit(benchmark::kMillisecond);

// --- Slot packing (crypto::SlotCodec, DESIGN.md §3.4): the same Paillier
// kernels over packed plaintexts. Arg pair = (key bits, slots per
// ciphertext); items/sec counts *channel entries*, so the per-entry rates
// must rise ~k× — one modexp/decryption now carries k entries. Slot width
// 199 = 60 (quantizer) + 9 (X envelope) + 128 (blind_bits) + 2 (guard),
// the protocol's own layout at blind_bits = 128.

constexpr std::size_t kSlotBits = 199;

void BM_PackedFoldAdd(benchmark::State& state) {
  // The handle_pu_update fold: one packed ⊕ replaces k per-channel ⊕s.
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto k = static_cast<std::size_t>(state.range(1));
  crypto::SlotCodec codec{kSlotBits, k};
  std::vector<bn::BigInt> va(k), vb(k);
  for (std::size_t j = 0; j < k; ++j) {
    va[j] = bn::BigInt{bn::random_bits(rng(), 60)};
    vb[j] = bn::BigInt{bn::random_bits(rng(), 60), true};
  }
  auto a = kp.pk.encrypt(codec.pack(va).mod_euclid(kp.pk.n()), rng());
  auto b = kp.pk.encrypt(codec.pack(vb).mod_euclid(kp.pk.n()), rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.add(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_PackedFoldAdd)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})
    ->Args({2048, 1})->Args({2048, 8});

void BM_PackedDecryptUnpack(benchmark::State& state) {
  // The STP conversion kernel: one CRT decryption + digit unpack yields k
  // sign extractions (vs k full decryptions unpacked).
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto k = static_cast<std::size_t>(state.range(1));
  crypto::SlotCodec codec{kSlotBits, k};
  std::vector<bn::BigInt> vs(k);
  for (std::size_t j = 0; j < k; ++j)
    vs[j] = bn::BigInt{bn::random_bits(rng(), 180), (j & 1) != 0};
  auto ct = kp.pk.encrypt(codec.pack(vs).mod_euclid(kp.pk.n()), rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.unpack(kp.sk.decrypt_signed(ct)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_PackedDecryptUnpack)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})
    ->Args({2048, 1})->Args({2048, 8})
    ->Unit(benchmark::kMillisecond);

void BM_PackedBlindEntry(benchmark::State& state) {
  // Eq. (14) on a packed operand: the fused double-exponentiation costs
  // the same as unpacked (α and X widths unchanged; only the cheap
  // closed-form E(β̃) operand widens), so per entry it amortizes ~k×.
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  auto k = static_cast<std::size_t>(state.range(1));
  crypto::SlotCodec codec{kSlotBits, k};
  std::vector<bn::BigInt> budgets(k), fs(k), betas(k);
  bn::BigUint alpha = bn::random_bits(rng(), 128);
  alpha.set_bit(127);
  for (std::size_t j = 0; j < k; ++j) {
    budgets[j] = bn::BigInt{5000 + static_cast<std::int64_t>(j)};
    fs[j] = bn::BigInt{1};
    betas[j] = bn::BigInt{bn::random_below(rng(), alpha - bn::BigUint{1}) +
                          bn::BigUint{1}};
  }
  auto budget = kp.pk.encrypt(codec.pack(budgets).mod_euclid(kp.pk.n()), rng());
  auto f = kp.pk.encrypt(codec.pack(fs).mod_euclid(kp.pk.n()), rng());
  bn::BigUint beta_pack = codec.pack(betas).magnitude();
  bn::BigUint x{40};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kp.pk.blind_entry(budget, f, x, alpha, beta_pack, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_PackedBlindEntry)
    ->Args({1024, 1})->Args({1024, 4})->Args({2048, 1})->Args({2048, 8})
    ->Unit(benchmark::kMillisecond);

void BM_MakeRandomizer(benchmark::State& state) {
  // One full |n|-bit modexp per factor — the RandomizerPool refill cost.
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pk.make_randomizer(rng()));
  }
}
BENCHMARK(BM_MakeRandomizer)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_FastRandomizerBase(benchmark::State& state) {
  // Fixed-base ablation: h^k with a 256-bit exponent and a precomputed
  // window table — ~64 multiplications, no squarings, vs the full modexp
  // above. (Short-exponent trade-off; see FastRandomizerBase docs.)
  const auto& kp = keys(static_cast<std::size_t>(state.range(0)));
  crypto::FastRandomizerBase base{kp.pk, rng()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.make(rng()));
  }
}
BENCHMARK(BM_FastRandomizerBase)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return pisa::benchjson::run_benchmarks_to_json(argc, argv,
                                                 "BENCH_paillier.json");
}
