file(REMOVE_RECURSE
  "CMakeFiles/tests_crypto.dir/crypto/chacha_rng_test.cpp.o"
  "CMakeFiles/tests_crypto.dir/crypto/chacha_rng_test.cpp.o.d"
  "CMakeFiles/tests_crypto.dir/crypto/damgard_jurik_test.cpp.o"
  "CMakeFiles/tests_crypto.dir/crypto/damgard_jurik_test.cpp.o.d"
  "CMakeFiles/tests_crypto.dir/crypto/key_codec_test.cpp.o"
  "CMakeFiles/tests_crypto.dir/crypto/key_codec_test.cpp.o.d"
  "CMakeFiles/tests_crypto.dir/crypto/paillier_property_test.cpp.o"
  "CMakeFiles/tests_crypto.dir/crypto/paillier_property_test.cpp.o.d"
  "CMakeFiles/tests_crypto.dir/crypto/paillier_test.cpp.o"
  "CMakeFiles/tests_crypto.dir/crypto/paillier_test.cpp.o.d"
  "CMakeFiles/tests_crypto.dir/crypto/rsa_signature_test.cpp.o"
  "CMakeFiles/tests_crypto.dir/crypto/rsa_signature_test.cpp.o.d"
  "CMakeFiles/tests_crypto.dir/crypto/sha256_test.cpp.o"
  "CMakeFiles/tests_crypto.dir/crypto/sha256_test.cpp.o.d"
  "CMakeFiles/tests_crypto.dir/crypto/threshold_paillier_test.cpp.o"
  "CMakeFiles/tests_crypto.dir/crypto/threshold_paillier_test.cpp.o.d"
  "tests_crypto"
  "tests_crypto.pdb"
  "tests_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
