# Empty dependencies file for tests_crypto.
# This may be replaced when dependencies are built.
