
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/chacha_rng_test.cpp" "tests/CMakeFiles/tests_crypto.dir/crypto/chacha_rng_test.cpp.o" "gcc" "tests/CMakeFiles/tests_crypto.dir/crypto/chacha_rng_test.cpp.o.d"
  "/root/repo/tests/crypto/damgard_jurik_test.cpp" "tests/CMakeFiles/tests_crypto.dir/crypto/damgard_jurik_test.cpp.o" "gcc" "tests/CMakeFiles/tests_crypto.dir/crypto/damgard_jurik_test.cpp.o.d"
  "/root/repo/tests/crypto/key_codec_test.cpp" "tests/CMakeFiles/tests_crypto.dir/crypto/key_codec_test.cpp.o" "gcc" "tests/CMakeFiles/tests_crypto.dir/crypto/key_codec_test.cpp.o.d"
  "/root/repo/tests/crypto/paillier_property_test.cpp" "tests/CMakeFiles/tests_crypto.dir/crypto/paillier_property_test.cpp.o" "gcc" "tests/CMakeFiles/tests_crypto.dir/crypto/paillier_property_test.cpp.o.d"
  "/root/repo/tests/crypto/paillier_test.cpp" "tests/CMakeFiles/tests_crypto.dir/crypto/paillier_test.cpp.o" "gcc" "tests/CMakeFiles/tests_crypto.dir/crypto/paillier_test.cpp.o.d"
  "/root/repo/tests/crypto/rsa_signature_test.cpp" "tests/CMakeFiles/tests_crypto.dir/crypto/rsa_signature_test.cpp.o" "gcc" "tests/CMakeFiles/tests_crypto.dir/crypto/rsa_signature_test.cpp.o.d"
  "/root/repo/tests/crypto/sha256_test.cpp" "tests/CMakeFiles/tests_crypto.dir/crypto/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/tests_crypto.dir/crypto/sha256_test.cpp.o.d"
  "/root/repo/tests/crypto/threshold_paillier_test.cpp" "tests/CMakeFiles/tests_crypto.dir/crypto/threshold_paillier_test.cpp.o" "gcc" "tests/CMakeFiles/tests_crypto.dir/crypto/threshold_paillier_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/pisa_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
