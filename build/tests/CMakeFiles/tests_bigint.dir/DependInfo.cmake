
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bigint/bigint_test.cpp" "tests/CMakeFiles/tests_bigint.dir/bigint/bigint_test.cpp.o" "gcc" "tests/CMakeFiles/tests_bigint.dir/bigint/bigint_test.cpp.o.d"
  "/root/repo/tests/bigint/biguint_edge_test.cpp" "tests/CMakeFiles/tests_bigint.dir/bigint/biguint_edge_test.cpp.o" "gcc" "tests/CMakeFiles/tests_bigint.dir/bigint/biguint_edge_test.cpp.o.d"
  "/root/repo/tests/bigint/biguint_test.cpp" "tests/CMakeFiles/tests_bigint.dir/bigint/biguint_test.cpp.o" "gcc" "tests/CMakeFiles/tests_bigint.dir/bigint/biguint_test.cpp.o.d"
  "/root/repo/tests/bigint/modular_test.cpp" "tests/CMakeFiles/tests_bigint.dir/bigint/modular_test.cpp.o" "gcc" "tests/CMakeFiles/tests_bigint.dir/bigint/modular_test.cpp.o.d"
  "/root/repo/tests/bigint/montgomery_edge_test.cpp" "tests/CMakeFiles/tests_bigint.dir/bigint/montgomery_edge_test.cpp.o" "gcc" "tests/CMakeFiles/tests_bigint.dir/bigint/montgomery_edge_test.cpp.o.d"
  "/root/repo/tests/bigint/prime_test.cpp" "tests/CMakeFiles/tests_bigint.dir/bigint/prime_test.cpp.o" "gcc" "tests/CMakeFiles/tests_bigint.dir/bigint/prime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
