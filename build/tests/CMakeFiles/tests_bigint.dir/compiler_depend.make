# Empty compiler generated dependencies file for tests_bigint.
# This may be replaced when dependencies are built.
