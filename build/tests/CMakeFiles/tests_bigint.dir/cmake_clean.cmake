file(REMOVE_RECURSE
  "CMakeFiles/tests_bigint.dir/bigint/bigint_test.cpp.o"
  "CMakeFiles/tests_bigint.dir/bigint/bigint_test.cpp.o.d"
  "CMakeFiles/tests_bigint.dir/bigint/biguint_edge_test.cpp.o"
  "CMakeFiles/tests_bigint.dir/bigint/biguint_edge_test.cpp.o.d"
  "CMakeFiles/tests_bigint.dir/bigint/biguint_test.cpp.o"
  "CMakeFiles/tests_bigint.dir/bigint/biguint_test.cpp.o.d"
  "CMakeFiles/tests_bigint.dir/bigint/modular_test.cpp.o"
  "CMakeFiles/tests_bigint.dir/bigint/modular_test.cpp.o.d"
  "CMakeFiles/tests_bigint.dir/bigint/montgomery_edge_test.cpp.o"
  "CMakeFiles/tests_bigint.dir/bigint/montgomery_edge_test.cpp.o.d"
  "CMakeFiles/tests_bigint.dir/bigint/prime_test.cpp.o"
  "CMakeFiles/tests_bigint.dir/bigint/prime_test.cpp.o.d"
  "tests_bigint"
  "tests_bigint.pdb"
  "tests_bigint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
