
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/comparison_baseline_test.cpp" "tests/CMakeFiles/tests_core.dir/core/comparison_baseline_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/comparison_baseline_test.cpp.o.d"
  "/root/repo/tests/core/fuzz_decode_test.cpp" "tests/CMakeFiles/tests_core.dir/core/fuzz_decode_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/fuzz_decode_test.cpp.o.d"
  "/root/repo/tests/core/key_directory_test.cpp" "tests/CMakeFiles/tests_core.dir/core/key_directory_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/key_directory_test.cpp.o.d"
  "/root/repo/tests/core/messages_test.cpp" "tests/CMakeFiles/tests_core.dir/core/messages_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/messages_test.cpp.o.d"
  "/root/repo/tests/core/multi_su_test.cpp" "tests/CMakeFiles/tests_core.dir/core/multi_su_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/multi_su_test.cpp.o.d"
  "/root/repo/tests/core/privacy_test.cpp" "tests/CMakeFiles/tests_core.dir/core/privacy_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/privacy_test.cpp.o.d"
  "/root/repo/tests/core/protocol_test.cpp" "tests/CMakeFiles/tests_core.dir/core/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/protocol_test.cpp.o.d"
  "/root/repo/tests/core/scenario_test.cpp" "tests/CMakeFiles/tests_core.dir/core/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/scenario_test.cpp.o.d"
  "/root/repo/tests/core/sdc_stp_test.cpp" "tests/CMakeFiles/tests_core.dir/core/sdc_stp_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/sdc_stp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pisa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pisa_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pisa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/watch/CMakeFiles/pisa_watch.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pisa_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
