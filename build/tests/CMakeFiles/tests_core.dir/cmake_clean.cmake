file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/comparison_baseline_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/comparison_baseline_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/fuzz_decode_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/fuzz_decode_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/key_directory_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/key_directory_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/messages_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/messages_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/multi_su_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/multi_su_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/privacy_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/privacy_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/protocol_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/protocol_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/scenario_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/scenario_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/sdc_stp_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/sdc_stp_test.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
