
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/bus_test.cpp" "tests/CMakeFiles/tests_radio_net.dir/net/bus_test.cpp.o" "gcc" "tests/CMakeFiles/tests_radio_net.dir/net/bus_test.cpp.o.d"
  "/root/repo/tests/net/codec_test.cpp" "tests/CMakeFiles/tests_radio_net.dir/net/codec_test.cpp.o" "gcc" "tests/CMakeFiles/tests_radio_net.dir/net/codec_test.cpp.o.d"
  "/root/repo/tests/radio/channel_sim_test.cpp" "tests/CMakeFiles/tests_radio_net.dir/radio/channel_sim_test.cpp.o" "gcc" "tests/CMakeFiles/tests_radio_net.dir/radio/channel_sim_test.cpp.o.d"
  "/root/repo/tests/radio/grid_test.cpp" "tests/CMakeFiles/tests_radio_net.dir/radio/grid_test.cpp.o" "gcc" "tests/CMakeFiles/tests_radio_net.dir/radio/grid_test.cpp.o.d"
  "/root/repo/tests/radio/itm_lite_test.cpp" "tests/CMakeFiles/tests_radio_net.dir/radio/itm_lite_test.cpp.o" "gcc" "tests/CMakeFiles/tests_radio_net.dir/radio/itm_lite_test.cpp.o.d"
  "/root/repo/tests/radio/pathloss_test.cpp" "tests/CMakeFiles/tests_radio_net.dir/radio/pathloss_test.cpp.o" "gcc" "tests/CMakeFiles/tests_radio_net.dir/radio/pathloss_test.cpp.o.d"
  "/root/repo/tests/radio/terrain_test.cpp" "tests/CMakeFiles/tests_radio_net.dir/radio/terrain_test.cpp.o" "gcc" "tests/CMakeFiles/tests_radio_net.dir/radio/terrain_test.cpp.o.d"
  "/root/repo/tests/radio/units_test.cpp" "tests/CMakeFiles/tests_radio_net.dir/radio/units_test.cpp.o" "gcc" "tests/CMakeFiles/tests_radio_net.dir/radio/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/radio/CMakeFiles/pisa_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pisa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
