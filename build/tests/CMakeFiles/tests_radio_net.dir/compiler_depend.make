# Empty compiler generated dependencies file for tests_radio_net.
# This may be replaced when dependencies are built.
