file(REMOVE_RECURSE
  "CMakeFiles/tests_radio_net.dir/net/bus_test.cpp.o"
  "CMakeFiles/tests_radio_net.dir/net/bus_test.cpp.o.d"
  "CMakeFiles/tests_radio_net.dir/net/codec_test.cpp.o"
  "CMakeFiles/tests_radio_net.dir/net/codec_test.cpp.o.d"
  "CMakeFiles/tests_radio_net.dir/radio/channel_sim_test.cpp.o"
  "CMakeFiles/tests_radio_net.dir/radio/channel_sim_test.cpp.o.d"
  "CMakeFiles/tests_radio_net.dir/radio/grid_test.cpp.o"
  "CMakeFiles/tests_radio_net.dir/radio/grid_test.cpp.o.d"
  "CMakeFiles/tests_radio_net.dir/radio/itm_lite_test.cpp.o"
  "CMakeFiles/tests_radio_net.dir/radio/itm_lite_test.cpp.o.d"
  "CMakeFiles/tests_radio_net.dir/radio/pathloss_test.cpp.o"
  "CMakeFiles/tests_radio_net.dir/radio/pathloss_test.cpp.o.d"
  "CMakeFiles/tests_radio_net.dir/radio/terrain_test.cpp.o"
  "CMakeFiles/tests_radio_net.dir/radio/terrain_test.cpp.o.d"
  "CMakeFiles/tests_radio_net.dir/radio/units_test.cpp.o"
  "CMakeFiles/tests_radio_net.dir/radio/units_test.cpp.o.d"
  "tests_radio_net"
  "tests_radio_net.pdb"
  "tests_radio_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_radio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
