file(REMOVE_RECURSE
  "CMakeFiles/tests_watch.dir/watch/aggregate_test.cpp.o"
  "CMakeFiles/tests_watch.dir/watch/aggregate_test.cpp.o.d"
  "CMakeFiles/tests_watch.dir/watch/matrices_test.cpp.o"
  "CMakeFiles/tests_watch.dir/watch/matrices_test.cpp.o.d"
  "CMakeFiles/tests_watch.dir/watch/multiband_test.cpp.o"
  "CMakeFiles/tests_watch.dir/watch/multiband_test.cpp.o.d"
  "CMakeFiles/tests_watch.dir/watch/plain_sdc_test.cpp.o"
  "CMakeFiles/tests_watch.dir/watch/plain_sdc_test.cpp.o.d"
  "CMakeFiles/tests_watch.dir/watch/plain_watch_test.cpp.o"
  "CMakeFiles/tests_watch.dir/watch/plain_watch_test.cpp.o.d"
  "CMakeFiles/tests_watch.dir/watch/tvws_test.cpp.o"
  "CMakeFiles/tests_watch.dir/watch/tvws_test.cpp.o.d"
  "tests_watch"
  "tests_watch.pdb"
  "tests_watch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
