
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/watch/aggregate_test.cpp" "tests/CMakeFiles/tests_watch.dir/watch/aggregate_test.cpp.o" "gcc" "tests/CMakeFiles/tests_watch.dir/watch/aggregate_test.cpp.o.d"
  "/root/repo/tests/watch/matrices_test.cpp" "tests/CMakeFiles/tests_watch.dir/watch/matrices_test.cpp.o" "gcc" "tests/CMakeFiles/tests_watch.dir/watch/matrices_test.cpp.o.d"
  "/root/repo/tests/watch/multiband_test.cpp" "tests/CMakeFiles/tests_watch.dir/watch/multiband_test.cpp.o" "gcc" "tests/CMakeFiles/tests_watch.dir/watch/multiband_test.cpp.o.d"
  "/root/repo/tests/watch/plain_sdc_test.cpp" "tests/CMakeFiles/tests_watch.dir/watch/plain_sdc_test.cpp.o" "gcc" "tests/CMakeFiles/tests_watch.dir/watch/plain_sdc_test.cpp.o.d"
  "/root/repo/tests/watch/plain_watch_test.cpp" "tests/CMakeFiles/tests_watch.dir/watch/plain_watch_test.cpp.o" "gcc" "tests/CMakeFiles/tests_watch.dir/watch/plain_watch_test.cpp.o.d"
  "/root/repo/tests/watch/tvws_test.cpp" "tests/CMakeFiles/tests_watch.dir/watch/tvws_test.cpp.o" "gcc" "tests/CMakeFiles/tests_watch.dir/watch/tvws_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/watch/CMakeFiles/pisa_watch.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pisa_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
