# Empty dependencies file for tests_watch.
# This may be replaced when dependencies are built.
