# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_bigint[1]_include.cmake")
include("/root/repo/build/tests/tests_crypto[1]_include.cmake")
include("/root/repo/build/tests/tests_radio_net[1]_include.cmake")
include("/root/repo/build/tests/tests_watch[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
