# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sdr_scenarios "/root/repo/build/examples/sdr_scenarios")
set_tests_properties(example_sdr_scenarios PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_city_simulation "/root/repo/build/examples/city_simulation")
set_tests_properties(example_city_simulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_privacy_tradeoff "/root/repo/build/examples/privacy_tradeoff")
set_tests_properties(example_privacy_tradeoff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_threshold_stp "/root/repo/build/examples/threshold_stp")
set_tests_properties(example_threshold_stp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_keytool "/root/repo/build/examples/keytool" "demo")
set_tests_properties(example_keytool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
