# Empty dependencies file for sdr_scenarios.
# This may be replaced when dependencies are built.
