file(REMOVE_RECURSE
  "CMakeFiles/sdr_scenarios.dir/sdr_scenarios.cpp.o"
  "CMakeFiles/sdr_scenarios.dir/sdr_scenarios.cpp.o.d"
  "sdr_scenarios"
  "sdr_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
