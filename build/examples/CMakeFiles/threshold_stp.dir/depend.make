# Empty dependencies file for threshold_stp.
# This may be replaced when dependencies are built.
