file(REMOVE_RECURSE
  "CMakeFiles/threshold_stp.dir/threshold_stp.cpp.o"
  "CMakeFiles/threshold_stp.dir/threshold_stp.cpp.o.d"
  "threshold_stp"
  "threshold_stp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
