# Empty compiler generated dependencies file for keytool.
# This may be replaced when dependencies are built.
