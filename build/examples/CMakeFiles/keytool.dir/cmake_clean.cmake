file(REMOVE_RECURSE
  "CMakeFiles/keytool.dir/keytool.cpp.o"
  "CMakeFiles/keytool.dir/keytool.cpp.o.d"
  "keytool"
  "keytool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keytool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
