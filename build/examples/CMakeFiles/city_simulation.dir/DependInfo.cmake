
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/city_simulation.cpp" "examples/CMakeFiles/city_simulation.dir/city_simulation.cpp.o" "gcc" "examples/CMakeFiles/city_simulation.dir/city_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pisa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pisa_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pisa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/watch/CMakeFiles/pisa_watch.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pisa_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
