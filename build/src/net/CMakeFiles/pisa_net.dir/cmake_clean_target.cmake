file(REMOVE_RECURSE
  "libpisa_net.a"
)
