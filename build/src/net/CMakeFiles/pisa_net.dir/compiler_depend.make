# Empty compiler generated dependencies file for pisa_net.
# This may be replaced when dependencies are built.
