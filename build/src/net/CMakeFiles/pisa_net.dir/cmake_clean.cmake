file(REMOVE_RECURSE
  "CMakeFiles/pisa_net.dir/bus.cpp.o"
  "CMakeFiles/pisa_net.dir/bus.cpp.o.d"
  "CMakeFiles/pisa_net.dir/codec.cpp.o"
  "CMakeFiles/pisa_net.dir/codec.cpp.o.d"
  "libpisa_net.a"
  "libpisa_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pisa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
