file(REMOVE_RECURSE
  "libpisa_bigint.a"
)
