# Empty dependencies file for pisa_bigint.
# This may be replaced when dependencies are built.
