file(REMOVE_RECURSE
  "CMakeFiles/pisa_bigint.dir/bigint.cpp.o"
  "CMakeFiles/pisa_bigint.dir/bigint.cpp.o.d"
  "CMakeFiles/pisa_bigint.dir/biguint.cpp.o"
  "CMakeFiles/pisa_bigint.dir/biguint.cpp.o.d"
  "CMakeFiles/pisa_bigint.dir/modular.cpp.o"
  "CMakeFiles/pisa_bigint.dir/modular.cpp.o.d"
  "CMakeFiles/pisa_bigint.dir/montgomery.cpp.o"
  "CMakeFiles/pisa_bigint.dir/montgomery.cpp.o.d"
  "CMakeFiles/pisa_bigint.dir/prime.cpp.o"
  "CMakeFiles/pisa_bigint.dir/prime.cpp.o.d"
  "CMakeFiles/pisa_bigint.dir/random_source.cpp.o"
  "CMakeFiles/pisa_bigint.dir/random_source.cpp.o.d"
  "libpisa_bigint.a"
  "libpisa_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pisa_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
