file(REMOVE_RECURSE
  "libpisa_radio.a"
)
