file(REMOVE_RECURSE
  "CMakeFiles/pisa_radio.dir/channel_sim.cpp.o"
  "CMakeFiles/pisa_radio.dir/channel_sim.cpp.o.d"
  "CMakeFiles/pisa_radio.dir/grid.cpp.o"
  "CMakeFiles/pisa_radio.dir/grid.cpp.o.d"
  "CMakeFiles/pisa_radio.dir/itm_lite.cpp.o"
  "CMakeFiles/pisa_radio.dir/itm_lite.cpp.o.d"
  "CMakeFiles/pisa_radio.dir/pathloss.cpp.o"
  "CMakeFiles/pisa_radio.dir/pathloss.cpp.o.d"
  "CMakeFiles/pisa_radio.dir/terrain.cpp.o"
  "CMakeFiles/pisa_radio.dir/terrain.cpp.o.d"
  "libpisa_radio.a"
  "libpisa_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pisa_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
