
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/channel_sim.cpp" "src/radio/CMakeFiles/pisa_radio.dir/channel_sim.cpp.o" "gcc" "src/radio/CMakeFiles/pisa_radio.dir/channel_sim.cpp.o.d"
  "/root/repo/src/radio/grid.cpp" "src/radio/CMakeFiles/pisa_radio.dir/grid.cpp.o" "gcc" "src/radio/CMakeFiles/pisa_radio.dir/grid.cpp.o.d"
  "/root/repo/src/radio/itm_lite.cpp" "src/radio/CMakeFiles/pisa_radio.dir/itm_lite.cpp.o" "gcc" "src/radio/CMakeFiles/pisa_radio.dir/itm_lite.cpp.o.d"
  "/root/repo/src/radio/pathloss.cpp" "src/radio/CMakeFiles/pisa_radio.dir/pathloss.cpp.o" "gcc" "src/radio/CMakeFiles/pisa_radio.dir/pathloss.cpp.o.d"
  "/root/repo/src/radio/terrain.cpp" "src/radio/CMakeFiles/pisa_radio.dir/terrain.cpp.o" "gcc" "src/radio/CMakeFiles/pisa_radio.dir/terrain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
