# Empty dependencies file for pisa_radio.
# This may be replaced when dependencies are built.
