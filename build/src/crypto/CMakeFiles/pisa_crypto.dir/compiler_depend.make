# Empty compiler generated dependencies file for pisa_crypto.
# This may be replaced when dependencies are built.
