file(REMOVE_RECURSE
  "CMakeFiles/pisa_crypto.dir/chacha_rng.cpp.o"
  "CMakeFiles/pisa_crypto.dir/chacha_rng.cpp.o.d"
  "CMakeFiles/pisa_crypto.dir/damgard_jurik.cpp.o"
  "CMakeFiles/pisa_crypto.dir/damgard_jurik.cpp.o.d"
  "CMakeFiles/pisa_crypto.dir/key_codec.cpp.o"
  "CMakeFiles/pisa_crypto.dir/key_codec.cpp.o.d"
  "CMakeFiles/pisa_crypto.dir/paillier.cpp.o"
  "CMakeFiles/pisa_crypto.dir/paillier.cpp.o.d"
  "CMakeFiles/pisa_crypto.dir/rsa_signature.cpp.o"
  "CMakeFiles/pisa_crypto.dir/rsa_signature.cpp.o.d"
  "CMakeFiles/pisa_crypto.dir/sha256.cpp.o"
  "CMakeFiles/pisa_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/pisa_crypto.dir/threshold_paillier.cpp.o"
  "CMakeFiles/pisa_crypto.dir/threshold_paillier.cpp.o.d"
  "libpisa_crypto.a"
  "libpisa_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pisa_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
