file(REMOVE_RECURSE
  "libpisa_crypto.a"
)
