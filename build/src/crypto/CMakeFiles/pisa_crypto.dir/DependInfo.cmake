
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/chacha_rng.cpp" "src/crypto/CMakeFiles/pisa_crypto.dir/chacha_rng.cpp.o" "gcc" "src/crypto/CMakeFiles/pisa_crypto.dir/chacha_rng.cpp.o.d"
  "/root/repo/src/crypto/damgard_jurik.cpp" "src/crypto/CMakeFiles/pisa_crypto.dir/damgard_jurik.cpp.o" "gcc" "src/crypto/CMakeFiles/pisa_crypto.dir/damgard_jurik.cpp.o.d"
  "/root/repo/src/crypto/key_codec.cpp" "src/crypto/CMakeFiles/pisa_crypto.dir/key_codec.cpp.o" "gcc" "src/crypto/CMakeFiles/pisa_crypto.dir/key_codec.cpp.o.d"
  "/root/repo/src/crypto/paillier.cpp" "src/crypto/CMakeFiles/pisa_crypto.dir/paillier.cpp.o" "gcc" "src/crypto/CMakeFiles/pisa_crypto.dir/paillier.cpp.o.d"
  "/root/repo/src/crypto/rsa_signature.cpp" "src/crypto/CMakeFiles/pisa_crypto.dir/rsa_signature.cpp.o" "gcc" "src/crypto/CMakeFiles/pisa_crypto.dir/rsa_signature.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/pisa_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/pisa_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/threshold_paillier.cpp" "src/crypto/CMakeFiles/pisa_crypto.dir/threshold_paillier.cpp.o" "gcc" "src/crypto/CMakeFiles/pisa_crypto.dir/threshold_paillier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
