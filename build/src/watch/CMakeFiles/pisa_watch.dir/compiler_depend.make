# Empty compiler generated dependencies file for pisa_watch.
# This may be replaced when dependencies are built.
