
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/watch/aggregate.cpp" "src/watch/CMakeFiles/pisa_watch.dir/aggregate.cpp.o" "gcc" "src/watch/CMakeFiles/pisa_watch.dir/aggregate.cpp.o.d"
  "/root/repo/src/watch/matrices.cpp" "src/watch/CMakeFiles/pisa_watch.dir/matrices.cpp.o" "gcc" "src/watch/CMakeFiles/pisa_watch.dir/matrices.cpp.o.d"
  "/root/repo/src/watch/plain_sdc.cpp" "src/watch/CMakeFiles/pisa_watch.dir/plain_sdc.cpp.o" "gcc" "src/watch/CMakeFiles/pisa_watch.dir/plain_sdc.cpp.o.d"
  "/root/repo/src/watch/plain_watch.cpp" "src/watch/CMakeFiles/pisa_watch.dir/plain_watch.cpp.o" "gcc" "src/watch/CMakeFiles/pisa_watch.dir/plain_watch.cpp.o.d"
  "/root/repo/src/watch/tvws_baseline.cpp" "src/watch/CMakeFiles/pisa_watch.dir/tvws_baseline.cpp.o" "gcc" "src/watch/CMakeFiles/pisa_watch.dir/tvws_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/radio/CMakeFiles/pisa_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
