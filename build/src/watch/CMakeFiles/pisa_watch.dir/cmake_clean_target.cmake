file(REMOVE_RECURSE
  "libpisa_watch.a"
)
