file(REMOVE_RECURSE
  "CMakeFiles/pisa_watch.dir/aggregate.cpp.o"
  "CMakeFiles/pisa_watch.dir/aggregate.cpp.o.d"
  "CMakeFiles/pisa_watch.dir/matrices.cpp.o"
  "CMakeFiles/pisa_watch.dir/matrices.cpp.o.d"
  "CMakeFiles/pisa_watch.dir/plain_sdc.cpp.o"
  "CMakeFiles/pisa_watch.dir/plain_sdc.cpp.o.d"
  "CMakeFiles/pisa_watch.dir/plain_watch.cpp.o"
  "CMakeFiles/pisa_watch.dir/plain_watch.cpp.o.d"
  "CMakeFiles/pisa_watch.dir/tvws_baseline.cpp.o"
  "CMakeFiles/pisa_watch.dir/tvws_baseline.cpp.o.d"
  "libpisa_watch.a"
  "libpisa_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pisa_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
