file(REMOVE_RECURSE
  "libpisa_core.a"
)
