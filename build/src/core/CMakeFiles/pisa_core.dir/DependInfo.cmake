
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comparison_baseline.cpp" "src/core/CMakeFiles/pisa_core.dir/comparison_baseline.cpp.o" "gcc" "src/core/CMakeFiles/pisa_core.dir/comparison_baseline.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/pisa_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/pisa_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/pisa_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/pisa_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/pu_client.cpp" "src/core/CMakeFiles/pisa_core.dir/pu_client.cpp.o" "gcc" "src/core/CMakeFiles/pisa_core.dir/pu_client.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/pisa_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/pisa_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/sdc_server.cpp" "src/core/CMakeFiles/pisa_core.dir/sdc_server.cpp.o" "gcc" "src/core/CMakeFiles/pisa_core.dir/sdc_server.cpp.o.d"
  "/root/repo/src/core/stp_server.cpp" "src/core/CMakeFiles/pisa_core.dir/stp_server.cpp.o" "gcc" "src/core/CMakeFiles/pisa_core.dir/stp_server.cpp.o.d"
  "/root/repo/src/core/su_client.cpp" "src/core/CMakeFiles/pisa_core.dir/su_client.cpp.o" "gcc" "src/core/CMakeFiles/pisa_core.dir/su_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/pisa_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pisa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/watch/CMakeFiles/pisa_watch.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pisa_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pisa_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
