file(REMOVE_RECURSE
  "CMakeFiles/pisa_core.dir/comparison_baseline.cpp.o"
  "CMakeFiles/pisa_core.dir/comparison_baseline.cpp.o.d"
  "CMakeFiles/pisa_core.dir/messages.cpp.o"
  "CMakeFiles/pisa_core.dir/messages.cpp.o.d"
  "CMakeFiles/pisa_core.dir/protocol.cpp.o"
  "CMakeFiles/pisa_core.dir/protocol.cpp.o.d"
  "CMakeFiles/pisa_core.dir/pu_client.cpp.o"
  "CMakeFiles/pisa_core.dir/pu_client.cpp.o.d"
  "CMakeFiles/pisa_core.dir/scenario.cpp.o"
  "CMakeFiles/pisa_core.dir/scenario.cpp.o.d"
  "CMakeFiles/pisa_core.dir/sdc_server.cpp.o"
  "CMakeFiles/pisa_core.dir/sdc_server.cpp.o.d"
  "CMakeFiles/pisa_core.dir/stp_server.cpp.o"
  "CMakeFiles/pisa_core.dir/stp_server.cpp.o.d"
  "CMakeFiles/pisa_core.dir/su_client.cpp.o"
  "CMakeFiles/pisa_core.dir/su_client.cpp.o.d"
  "libpisa_core.a"
  "libpisa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pisa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
