# Empty compiler generated dependencies file for pisa_core.
# This may be replaced when dependencies are built.
