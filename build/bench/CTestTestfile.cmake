# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_aggregate_margin "/root/repo/build/bench/bench_aggregate_margin")
set_tests_properties(bench_smoke_aggregate_margin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;22;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_watch_vs_tvws "/root/repo/build/bench/bench_watch_vs_tvws")
set_tests_properties(bench_smoke_watch_vs_tvws PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_threshold "/root/repo/build/bench/bench_threshold")
set_tests_properties(bench_smoke_threshold PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_privacy_tradeoff "/root/repo/build/bench/bench_privacy_tradeoff")
set_tests_properties(bench_smoke_privacy_tradeoff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
