# Empty dependencies file for bench_comparison_baseline.
# This may be replaced when dependencies are built.
