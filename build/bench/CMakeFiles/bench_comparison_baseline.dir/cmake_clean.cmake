file(REMOVE_RECURSE
  "CMakeFiles/bench_comparison_baseline.dir/bench_comparison_baseline.cpp.o"
  "CMakeFiles/bench_comparison_baseline.dir/bench_comparison_baseline.cpp.o.d"
  "bench_comparison_baseline"
  "bench_comparison_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparison_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
