file(REMOVE_RECURSE
  "CMakeFiles/bench_watch_vs_tvws.dir/bench_watch_vs_tvws.cpp.o"
  "CMakeFiles/bench_watch_vs_tvws.dir/bench_watch_vs_tvws.cpp.o.d"
  "bench_watch_vs_tvws"
  "bench_watch_vs_tvws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_watch_vs_tvws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
