# Empty dependencies file for bench_watch_vs_tvws.
# This may be replaced when dependencies are built.
