# Empty compiler generated dependencies file for bench_privacy_tradeoff.
# This may be replaced when dependencies are built.
