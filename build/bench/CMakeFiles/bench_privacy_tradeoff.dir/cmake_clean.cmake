file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_tradeoff.dir/bench_privacy_tradeoff.cpp.o"
  "CMakeFiles/bench_privacy_tradeoff.dir/bench_privacy_tradeoff.cpp.o.d"
  "bench_privacy_tradeoff"
  "bench_privacy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
