# Empty compiler generated dependencies file for bench_aggregate_margin.
# This may be replaced when dependencies are built.
