file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregate_margin.dir/bench_aggregate_margin.cpp.o"
  "CMakeFiles/bench_aggregate_margin.dir/bench_aggregate_margin.cpp.o.d"
  "bench_aggregate_margin"
  "bench_aggregate_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
