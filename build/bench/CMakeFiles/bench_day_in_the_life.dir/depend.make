# Empty dependencies file for bench_day_in_the_life.
# This may be replaced when dependencies are built.
