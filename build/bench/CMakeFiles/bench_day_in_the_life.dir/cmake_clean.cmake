file(REMOVE_RECURSE
  "CMakeFiles/bench_day_in_the_life.dir/bench_day_in_the_life.cpp.o"
  "CMakeFiles/bench_day_in_the_life.dir/bench_day_in_the_life.cpp.o.d"
  "bench_day_in_the_life"
  "bench_day_in_the_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_day_in_the_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
