// The §VI-A location-privacy dial, interactively demonstrated.
//
// An SU may disclose a coarse region ("somewhere in the north half") to cut
// request preparation and SDC processing time proportionally. This example
// walks one SU through four privacy levels against the same PU state and
// shows that (a) the decision never changes, (b) cost falls linearly, and
// (c) what the SDC actually learns at each level.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/chacha_rng.hpp"
#include "radio/pathloss.hpp"

using namespace pisa;
using Clock = std::chrono::steady_clock;

int main() {
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 4;
  cfg.watch.grid_cols = 8;  // 32 blocks: column 0..7 west->east
  cfg.watch.block_size_m = 200.0;
  cfg.watch.channels = 4;
  cfg.paillier_bits = 768;
  cfg.rsa_bits = 384;
  cfg.blind_bits = 64;
  cfg.mr_rounds = 12;

  crypto::ChaChaRng rng = crypto::ChaChaRng::from_os_entropy();
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};

  // One PU site in block 2 (north-west); the SU sits in block 5 nearby.
  core::PisaSystem pisa{cfg, {{0, radio::BlockId{2}}}, model, rng};
  pisa.add_su(1);
  pisa.pu_update(0, watch::PuTuning{radio::ChannelId{0}, 1e-6});

  watch::SuRequest request{1, radio::BlockId{5},
                           std::vector<double>{0.0, 0.01, 0.01, 0.01}};

  struct Level {
    const char* name;
    const char* sdc_learns;
    std::uint32_t hi;  // disclosed range [0, hi)
  };
  // All levels keep block 2 (the PU site, where F != 0) inside the range.
  Level levels[] = {
      {"full privacy", "nothing about the SU's location", 32},
      {"half area", "SU is in the western half", 16},
      {"quarter area", "SU is in the north-west quarter", 8},
      {"tight box", "SU is within 6 specific blocks", 6},
  };

  std::printf("%-14s %-38s %10s %10s %9s\n", "privacy level", "SDC learns",
              "prep (ms)", "proc (ms)", "decision");
  for (const auto& lvl : levels) {
    auto t0 = Clock::now();
    auto outcome = pisa.su_request(request, std::make_pair(0u, lvl.hi));
    double total_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const auto& stats = pisa.sdc().stats();
    double proc = stats.phase1.last_ms + stats.phase2.last_ms;
    std::printf("%-14s %-38s %10.1f %10.1f %9s\n", lvl.name, lvl.sdc_learns,
                total_ms - proc, proc, outcome.granted ? "GRANTED" : "DENIED");
  }

  std::printf("\nThe decision is invariant; cost tracks the disclosed "
              "fraction (paper: linear trade-off).\n");
  return 0;
}
