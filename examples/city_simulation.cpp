// City-scale simulation: synthetic terrain, TV towers, dozens of TV
// receivers and a fleet of WiFi access points competing for UHF spectrum.
//
// Exercises the whole substrate stack — fractal terrain, the Extended Hata
// model with terrain-aware diffraction penalties, the TVWS baseline and the
// plaintext WATCH allocator — and then spot-checks a handful of the
// decisions through the full encrypted PISA pipeline to show plaintext and
// ciphertext agree at city scale too.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/chacha_rng.hpp"
#include "radio/itm_lite.hpp"
#include "radio/terrain.hpp"
#include "watch/plain_watch.hpp"
#include "watch/tvws_baseline.hpp"

using namespace pisa;
using radio::BlockId;
using radio::ChannelId;

int main() {
  std::printf("City-scale spectrum simulation\n");
  std::printf("==============================\n\n");

  // --- A 3.2 km x 3.2 km city with rugged terrain.
  auto terrain = std::make_shared<radio::Terrain>(6u, 50.0, 250.0, 0.65,
                                                  std::uint64_t{20260706});
  std::printf("Terrain: %zu x %zu samples, extent %.1f km\n",
              terrain->samples_per_side(), terrain->samples_per_side(),
              terrain->extent_m() / 1000.0);

  watch::WatchConfig cfg;
  cfg.grid_rows = 16;
  cfg.grid_cols = 16;
  cfg.block_size_m = 200.0;
  cfg.channels = 6;

  radio::ExtendedHataModel tv_model{600.0, 150.0, 10.0};
  radio::ExtendedHataModel su_model{600.0, 30.0, 10.0};

  // --- Two broadcast towers; terrain shadows some receivers.
  std::vector<watch::TvTransmitter> towers{
      {{800.0, 800.0}, ChannelId{1}, 80.0},
      {{2400.0, 2400.0}, ChannelId{3}, 80.0},
  };
  watch::TvwsBaseline tvws{cfg, towers, tv_model};
  std::printf("TVWS availability: %zu / %zu (channel, block) pairs\n\n",
              tvws.available_pairs(), tvws.total_pairs());

  // --- 24 registered receiver households.
  bn::SplitMix64Random layout_rng{7};
  std::vector<watch::PuSite> sites;
  for (std::uint32_t i = 0; i < 24; ++i) {
    sites.push_back({i, BlockId{static_cast<std::uint32_t>(
                            layout_rng.next_u64() % 256)}});
  }
  watch::PlainWatch city{cfg, sites, su_model};

  // Evening schedule: two thirds of receivers watching something. TV signal
  // strength at each home is predicted with ITM-lite (the irregular-terrain
  // stand-in for the paper's Longley-Rice, DESIGN.md §2): knife-edge
  // diffraction over the fractal terrain shadows some receivers.
  auto area = cfg.make_area();
  std::size_t watching = 0, shadowed = 0;
  for (const auto& site : sites) {
    if (layout_rng.next_u64() % 3 == 2) {
      city.pu_update(site.pu_id, watch::PuTuning{});
      continue;
    }
    ++watching;
    auto channel = ChannelId{static_cast<std::uint32_t>(
        towers[layout_rng.next_u64() % towers.size()].channel.index)};
    auto home = area.block_center(site.block);
    const auto& tower = towers[channel.index == 1 ? 0 : 1];
    radio::ItmLiteModel itm{terrain, 600.0, tower.location.x, tower.location.y,
                            150.0, home.x, home.y, 10.0};
    if (!itm.line_of_sight()) ++shadowed;
    double rx_mw = radio::dbm_to_mw(tower.eirp_dbm) * itm.site_gain();
    rx_mw = std::max(rx_mw, cfg.pu_min_signal_mw());
    city.pu_update(site.pu_id, watch::PuTuning{channel, rx_mw});
  }
  std::printf("%zu of %zu receivers actively watching; %zu of them terrain-"
              "shadowed (ITM-lite diffraction)\n\n",
              watching, sites.size(), shadowed);

  // --- A WiFi operator probes every 4th block on every channel at 100 mW.
  std::size_t watch_ok = 0, tvws_ok = 0, probes = 0;
  for (std::uint32_t b = 0; b < 256; b += 4) {
    for (std::uint32_t c = 0; c < cfg.channels; ++c) {
      std::vector<double> eirp(cfg.channels, 0.0);
      eirp[c] = 100.0;
      ++probes;
      if (city.process_request({9000, BlockId{b}, eirp}).granted) ++watch_ok;
      if (tvws.channel_available(ChannelId{c}, BlockId{b})) ++tvws_ok;
    }
  }
  std::printf("Access-point survey (%zu probes at 100 mW):\n", probes);
  std::printf("  WATCH (receiver-aware) grants : %5.1f%%\n",
              100.0 * static_cast<double>(watch_ok) / static_cast<double>(probes));
  std::printf("  TVWS (tower contours) grants  : %5.1f%%\n\n",
              100.0 * static_cast<double>(tvws_ok) / static_cast<double>(probes));

  // --- Spot-check four decisions through the encrypted pipeline.
  core::PisaConfig pcfg;
  pcfg.watch = cfg;
  pcfg.paillier_bits = 768;
  pcfg.rsa_bits = 384;
  pcfg.blind_bits = 64;
  pcfg.mr_rounds = 12;
  crypto::ChaChaRng rng{std::uint64_t{5150}};
  core::PisaSystem pisa{pcfg, sites, su_model, rng};
  pisa.add_su(9000);
  // Mirror the PU state into the encrypted system by replaying the same
  // deterministic schedule generator (seed 7, after the 24 placement draws).
  {
    bn::SplitMix64Random rng2{7};
    for (std::uint32_t i = 0; i < 24; ++i) (void)(rng2.next_u64() % 256);
    for (const auto& site : sites) {
      if (rng2.next_u64() % 3 == 2) {
        pisa.pu_update(site.pu_id, watch::PuTuning{});
        continue;
      }
      auto channel = ChannelId{static_cast<std::uint32_t>(
          towers[rng2.next_u64() % towers.size()].channel.index)};
      auto home = area.block_center(site.block);
      const auto& tower = towers[channel.index == 1 ? 0 : 1];
      radio::ItmLiteModel itm{terrain, 600.0, tower.location.x,
                              tower.location.y, 150.0, home.x, home.y, 10.0};
      double rx_mw = radio::dbm_to_mw(tower.eirp_dbm) * itm.site_gain();
      rx_mw = std::max(rx_mw, cfg.pu_min_signal_mw());
      pisa.pu_update(site.pu_id, watch::PuTuning{channel, rx_mw});
    }
  }

  std::printf("Encrypted spot-checks (PISA vs plaintext WATCH):\n");
  int agreements = 0, total_checks = 0;
  for (std::uint32_t b : {0u, 128u}) {
    // Channel 1 carries viewers (expect denies near them); channel 0 is
    // idle everywhere (expect grants).
    for (std::uint32_t c : {1u, 0u}) {
      std::vector<double> eirp(cfg.channels, 0.0);
      eirp[c] = 100.0;
      watch::SuRequest req{9000, BlockId{b}, eirp};
      bool plain = city.process_request(req).granted;
      bool enc = pisa.su_request(req).granted;
      std::printf("  block %3u channel %u: plaintext=%s encrypted=%s\n", b, c,
                  plain ? "GRANT" : "DENY", enc ? "GRANT" : "DENY");
      ++total_checks;
      if (plain == enc) ++agreements;
    }
  }
  std::printf("%d/%d decisions agree.\n", agreements, total_checks);
  return agreements == total_checks ? 0 : 1;
}
