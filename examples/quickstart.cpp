// Quickstart: the smallest complete PISA deployment.
//
// One TV receiver (PU), one WiFi device (SU), a spectrum database
// controller (SDC) and the semi-trusted party (STP), exchanging encrypted
// messages over the simulated network. Shows the whole lifecycle:
//
//   1. system setup (group Paillier key at the STP, RSA license key at the
//      SDC, per-SU Paillier keys),
//   2. the PU privately announcing that it started watching a channel,
//   3. the SU requesting spectrum — denied, because it would interfere,
//   4. the PU turning off — the same request is now granted, and the SU
//      walks away with a verifiable signed license.
//
// Small key sizes keep this instant; production would use
// cfg.paillier_bits = 2048 (see bench/bench_system.cpp).
#include <cstdio>

#include "core/protocol.hpp"
#include "crypto/chacha_rng.hpp"
#include "radio/pathloss.hpp"

using namespace pisa;

int main() {
  // --- Configuration: a 1 km x 1.5 km suburb, 4 TV channels.
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 10;
  cfg.watch.grid_cols = 15;
  cfg.watch.block_size_m = 100.0;
  cfg.watch.channels = 4;
  cfg.paillier_bits = 768;  // demo size; use 2048 in production
  cfg.rsa_bits = 384;
  cfg.blind_bits = 64;
  cfg.mr_rounds = 12;

  crypto::ChaChaRng rng = crypto::ChaChaRng::from_os_entropy();
  radio::ExtendedHataModel propagation{600.0, 30.0, 10.0};

  // --- One registered TV receiver near the middle of the area. Its
  // location is public; what it watches never leaves it unencrypted.
  std::vector<watch::PuSite> sites{{0, radio::BlockId{5 * 15 + 7}}};

  std::printf("Setting up PISA (group key %zu bits, license key %zu bits)...\n",
              cfg.paillier_bits, cfg.rsa_bits);
  core::PisaSystem pisa{cfg, sites, propagation, rng};
  pisa.add_su(1);
  std::printf("Exclusion radius d^c = %.1f km\n\n",
              pisa.exclusion_radius() / 1000.0);

  // --- The PU tunes to channel 2 at -60 dBm reception strength. The update
  // is C ciphertexts; the SDC cannot tell which channel changed.
  std::printf("PU 0 tunes to channel 2 (encrypted update, %zu bytes)...\n",
              pisa.pu(0).update_bytes());
  pisa.pu_update(0, watch::PuTuning{radio::ChannelId{2}, 1e-6});

  // --- The SU, one block away, asks to transmit 100 mW on every channel.
  watch::SuRequest request{1, radio::BlockId{5 * 15 + 8},
                           std::vector<double>(cfg.watch.channels, 100.0)};
  auto outcome = pisa.su_request(request);
  std::printf("SU 1 requests 100 mW on all channels: %s\n",
              outcome.granted ? "GRANTED" : "DENIED");
  std::printf("  (request %zu bytes -> SDC, response %zu bytes back)\n",
              outcome.request_bytes, outcome.response_bytes);

  // --- Masking out the PU's channel makes the request harmless...
  auto eirp = std::vector<double>(cfg.watch.channels, 100.0);
  eirp[2] = 0.0;
  auto outcome2 = pisa.su_request({1, request.block, eirp});
  std::printf("SU 1 re-requests, skipping channel 2: %s\n",
              outcome2.granted ? "GRANTED" : "DENIED");

  // --- ...and when the receiver turns off, even the full request passes.
  pisa.pu_update(0, watch::PuTuning{});  // receiver off
  auto outcome3 = pisa.su_request(request);
  std::printf("PU turns off; original request again:  %s\n",
              outcome3.granted ? "GRANTED" : "DENIED");

  if (outcome3.granted) {
    bool valid = pisa.sdc().license_key().verify(
        outcome3.license.signing_bytes(), outcome3.signature);
    std::printf("\nLicense #%llu for SU %u issued by '%s': signature %s\n",
                static_cast<unsigned long long>(outcome3.license.serial),
                outcome3.license.su_id, outcome3.license.issuer.c_str(),
                valid ? "VALID" : "INVALID");
  }

  auto total = pisa.network().total_stats();
  std::printf("\nTotal protocol traffic: %llu messages, %.2f MB\n",
              static_cast<unsigned long long>(total.messages),
              static_cast<double>(total.bytes) / 1e6);
  return 0;
}
