// keytool — generate, persist and inspect PISA key material.
//
// The deployment workflow the paper sketches (§III-C) has real key
// logistics: the STP generates the group pair, SUs generate their own pairs
// and upload public keys, the SDC publishes its RSA license key. This tool
// exercises the serialization layer (crypto/key_codec.hpp) end to end:
//
//   keytool gen-paillier <bits> <out-prefix>   -> .pub / .key files
//   keytool gen-rsa <bits> <out-prefix>        -> .pub file (+ sign check)
//   keytool inspect <file.pub>                 -> type, bits, fingerprint
//   keytool demo                               -> full round trip in /tmp
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/chacha_rng.hpp"
#include "crypto/key_codec.hpp"

using namespace pisa;

namespace {

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("cannot read " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

int gen_paillier(std::size_t bits, const std::string& prefix) {
  auto rng = crypto::ChaChaRng::from_os_entropy();
  std::printf("Generating %zu-bit Paillier key pair...\n", bits);
  auto kp = crypto::paillier_generate(bits, rng, 32);
  write_file(prefix + ".pub", crypto::serialize(kp.pk));
  write_file(prefix + ".key", crypto::serialize(kp.sk));
  std::printf("  %s.pub (%zu bytes), %s.key (%zu bytes)\n", prefix.c_str(),
              crypto::serialize(kp.pk).size(), prefix.c_str(),
              crypto::serialize(kp.sk).size());
  std::printf("  fingerprint: %016llx\n",
              static_cast<unsigned long long>(crypto::key_fingerprint(kp.pk)));
  return 0;
}

int gen_rsa(std::size_t bits, const std::string& prefix) {
  auto rng = crypto::ChaChaRng::from_os_entropy();
  std::printf("Generating %zu-bit RSA license key...\n", bits);
  auto kp = crypto::rsa_generate(bits, rng, 32);
  write_file(prefix + ".pub", crypto::serialize(kp.pk));
  // Round-trip self-check: sign with the fresh key, verify with the parsed one.
  std::vector<std::uint8_t> probe{'p', 'i', 's', 'a'};
  auto parsed = crypto::parse_rsa_public_key(read_file(prefix + ".pub"));
  bool ok = parsed.verify(probe, kp.sk.sign(probe));
  std::printf("  %s.pub written; self-check %s; fingerprint %016llx\n",
              prefix.c_str(), ok ? "passed" : "FAILED",
              static_cast<unsigned long long>(crypto::key_fingerprint(kp.pk)));
  return ok ? 0 : 1;
}

int inspect(const std::string& path) {
  auto bytes = read_file(path);
  try {
    auto pk = crypto::parse_paillier_public_key(bytes);
    std::printf("%s: Paillier public key, %zu-bit modulus, fingerprint %016llx\n",
                path.c_str(), pk.key_bits(),
                static_cast<unsigned long long>(crypto::key_fingerprint(pk)));
    return 0;
  } catch (const std::invalid_argument&) {
  }
  try {
    auto pk = crypto::parse_rsa_public_key(bytes);
    std::printf("%s: RSA public key, %zu-bit modulus, e=%s, fingerprint %016llx\n",
                path.c_str(), pk.key_bits(), pk.e().to_dec().c_str(),
                static_cast<unsigned long long>(crypto::key_fingerprint(pk)));
    return 0;
  } catch (const std::invalid_argument&) {
  }
  std::printf("%s: not a recognized public key file\n", path.c_str());
  return 1;
}

int demo() {
  const std::string prefix = "/tmp/pisa_keytool_demo";
  if (gen_paillier(512, prefix + "_grp") != 0) return 1;
  if (gen_rsa(512, prefix + "_lic") != 0) return 1;
  std::printf("\nReloading from disk:\n");
  inspect(prefix + "_grp.pub");
  inspect(prefix + "_lic.pub");

  // Private key round trip: decrypt something with the reloaded key.
  auto sk = crypto::parse_paillier_private_key(read_file(prefix + "_grp.key"));
  auto rng = crypto::ChaChaRng::from_os_entropy();
  auto ct = sk.public_key().encrypt(bn::BigUint{20260706}, rng);
  bool ok = sk.decrypt(ct).to_u64() == 20260706;
  std::printf("\nReloaded private key decrypts: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 4 && std::strcmp(argv[1], "gen-paillier") == 0)
      return gen_paillier(static_cast<std::size_t>(std::stoul(argv[2])), argv[3]);
    if (argc >= 4 && std::strcmp(argv[1], "gen-rsa") == 0)
      return gen_rsa(static_cast<std::size_t>(std::stoul(argv[2])), argv[3]);
    if (argc >= 3 && std::strcmp(argv[1], "inspect") == 0)
      return inspect(argv[2]);
    if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) return demo();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("usage: keytool gen-paillier <bits> <prefix> | gen-rsa <bits> "
              "<prefix> | inspect <file> | demo\n");
  // With no arguments, run the demo so `for e in examples/*; do $e; done`
  // exercises the tool.
  return argc <= 1 ? demo() : 1;
}
