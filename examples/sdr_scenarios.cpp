// The paper's real-world experiment (§VI-B, Figures 7–11) as a narrative
// walkthrough: two secondary transmitters share WiFi channel 6 with a TV
// receiver, and PISA decides — over real ciphertexts — which of them may
// keep transmitting. The Ettus USRP hardware is replaced by the channel
// simulator (DESIGN.md §2); the protocol side is unchanged.
//
// Run bench/bench_scenarios for the quantitative figure data; this example
// focuses on the event flow and prints the envelope traces as ASCII art.
#include <cstdio>
#include <string>

#include "core/protocol.hpp"
#include "crypto/chacha_rng.hpp"
#include "radio/channel_sim.hpp"
#include "radio/pathloss.hpp"

using namespace pisa;

namespace {

// Tiny ASCII oscilloscope: one row, amplitude binned into 0-8.
void draw_trace(const std::vector<radio::EnvelopeSample>& trace,
                const char* label, double ref_peak = 0.0) {
  static const char* glyphs = " .:-=+*#%";
  double peak = ref_peak;
  for (const auto& s : trace) peak = std::max(peak, s.amplitude);
  std::string line;
  std::size_t cols = 72;
  std::size_t stride = std::max<std::size_t>(1, trace.size() / cols);
  for (std::size_t i = 0; i < trace.size(); i += stride) {
    double hi = 0;
    for (std::size_t j = i; j < std::min(i + stride, trace.size()); ++j)
      hi = std::max(hi, trace[j].amplitude);
    auto level = static_cast<std::size_t>(hi / peak * 8.0);
    line.push_back(glyphs[std::min<std::size_t>(level, 8)]);
  }
  std::printf("  %-10s |%s|\n", label, line.c_str());
}

}  // namespace

int main() {
  std::printf("PISA over the (simulated) USRP bench — paper §VI-B\n");
  std::printf("==================================================\n\n");

  // Bench geometry: PU monitor at origin; SU1 8 m away, SU2 60 m away.
  radio::FreeSpaceModel ch6{2437.0};
  radio::ChannelSimulator sim{ch6, 0.0, 0.0};
  auto su1 = sim.add_transmitter({"SU1", 8.0, 0.0, 15.0, true, 80.0, 350.0, 0.0});
  auto su2 = sim.add_transmitter({"SU2", 60.0, 0.0, 15.0, true, 80.0, 350.0, 170.0});

  std::printf("Scenario 1 — PU idle; SU1 and SU2 both transmit (Fig. 8):\n");
  auto t1 = sim.capture(700.0, 2e6);
  auto s1 = sim.analyze(t1);
  const double scope_peak = s1.peak_amplitude;
  draw_trace(t1, "PU sees", scope_peak);
  std::printf("  %d packets; the taller bursts are SU1 (7.5x closer)\n\n",
              s1.packets_observed);

  // The protocol side: 1-channel strip of 10 m blocks along the bench.
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 1;
  cfg.watch.grid_cols = 8;
  cfg.watch.block_size_m = 10.0;
  cfg.watch.channels = 1;
  cfg.paillier_bits = 768;
  cfg.rsa_bits = 384;
  cfg.blind_bits = 64;
  cfg.mr_rounds = 12;
  crypto::ChaChaRng rng = crypto::ChaChaRng::from_os_entropy();
  radio::LogDistanceModel su_model{2437.0, 3.0};
  core::PisaSystem pisa{cfg, {{0, radio::BlockId{0}}}, su_model, rng};
  pisa.add_su(1);
  pisa.add_su(2);

  std::printf("Scenario 2 — PU claims the channel (Fig. 10):\n");
  pisa.pu_update(0, watch::PuTuning{radio::ChannelId{0}, 2e-7});
  sim.transmitter(su1).active = false;
  sim.transmitter(su2).active = false;
  draw_trace(sim.capture(700.0, 2e6), "PU sees", scope_peak);
  std::printf("  encrypted update sent; SDC silences both SUs — channel "
              "quiet for the PU\n\n");

  std::printf("Scenario 3 — both SUs request transmission (Fig. 11):\n");
  watch::SuRequest near_loud{1, radio::BlockId{1}, {50.0}};
  watch::SuRequest far_quiet{2, radio::BlockId{6}, {0.05}};
  std::printf("  SU1 (block 1, 50 mW) and SU2 (block 6, 0.05 mW) submit "
              "encrypted requests\n\n");

  std::printf("Scenario 4 — SDC decides over ciphertexts (Fig. 9):\n");
  auto o1 = pisa.su_request(near_loud);
  auto o2 = pisa.su_request(far_quiet);
  std::printf("  SU1: %s, SU2: %s\n", o1.granted ? "GRANTED" : "DENIED",
              o2.granted ? "GRANTED" : "DENIED");
  sim.transmitter(su1).active = o1.granted;
  sim.transmitter(su2).active = o2.granted;
  sim.transmitter(su2).period_us = 1900.0;
  sim.transmitter(su2).burst_us = 200.0;
  auto t4 = sim.capture(20'000.0, 2e6);
  draw_trace(t4, "PU sees", scope_peak);
  std::printf("  %d packets in 20 ms from the granted SU (paper: ~11)\n",
              sim.analyze(t4).packets_observed);

  std::printf("\nNote the SDC never saw the PU's channel, the SUs' EIRPs, or "
              "the decision itself in the clear.\n");
  return 0;
}
