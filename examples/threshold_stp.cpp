// No single decryptor: PISA with a 2-of-2 threshold-shared group key.
//
// Classic PISA trusts the STP with the full group secret key — a curious
// STP could decrypt every stored PU update and SU request if it ever got
// hold of them. The paper's future-work direction (§VII) is to relax that.
// This example runs the same scenario through both modes and shows:
//   * decisions are identical,
//   * in threshold mode the STP's lone share cannot open a PU ciphertext,
//   * the extra cost (SDC partials, doubled conversion traffic).
#include <cstdio>

#include "core/protocol.hpp"
#include "crypto/chacha_rng.hpp"
#include "crypto/threshold_paillier.hpp"
#include "radio/pathloss.hpp"

using namespace pisa;

namespace {

core::PisaConfig make_config(bool threshold) {
  core::PisaConfig cfg;
  cfg.watch.grid_rows = 4;
  cfg.watch.grid_cols = 6;
  cfg.watch.block_size_m = 200.0;
  cfg.watch.channels = 3;
  cfg.paillier_bits = 768;
  cfg.rsa_bits = 384;
  cfg.blind_bits = 64;
  cfg.mr_rounds = 12;
  cfg.threshold_stp = threshold;
  return cfg;
}

}  // namespace

int main() {
  radio::ExtendedHataModel model{600.0, 30.0, 10.0};
  std::vector<watch::PuSite> sites{{0, radio::BlockId{0}}};
  watch::SuRequest request{1, radio::BlockId{1},
                           std::vector<double>(3, 100.0)};

  std::printf("Classic STP vs threshold STP\n");
  std::printf("============================\n\n");

  for (bool threshold : {false, true}) {
    crypto::ChaChaRng rng{std::uint64_t{99}};  // same seed: same scenario
    core::PisaSystem pisa{make_config(threshold), sites, model, rng};
    pisa.add_su(1);
    pisa.pu_update(0, watch::PuTuning{radio::ChannelId{1}, 1e-6});
    auto out = pisa.su_request(request);

    std::printf("%s mode:\n", threshold ? "Threshold" : "Classic");
    std::printf("  decision: %s\n", out.granted ? "GRANTED" : "DENIED");
    std::printf("  SDC -> STP conversion traffic: %zu bytes%s\n",
                out.convert_bytes,
                threshold ? "  (2x: blinded values + SDC partials)" : "");

    if (threshold) {
      // Demonstrate what the trust relaxation means: grab a stored PU
      // ciphertext and show the STP's share alone does not open it.
      const auto& pk = pisa.stp().group_key();
      auto secret = pk.encrypt(bn::BigUint{42}, rng);  // stands in for PU data
      auto lone_partial = crypto::threshold_partial_decrypt(
          pk, pisa.stp().sdc_share(), secret);
      // A lone partial is just a group element; L-extraction only works on
      // a completed combination.
      bool opens = (lone_partial % pk.n()) == bn::BigUint{1} &&
                   ((lone_partial - bn::BigUint{1}) / pk.n() % pk.n()) ==
                       bn::BigUint{42};
      std::printf("  one share alone opens a stored ciphertext: %s\n",
                  opens ? "YES (broken!)" : "no");
    }
    std::printf("\n");
  }

  std::printf("Same spectrum decisions; no party can decrypt alone.\n");
  return 0;
}
