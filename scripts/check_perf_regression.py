#!/usr/bin/env python3
"""Perf-regression guard: fresh --quick bench JSON vs the committed snapshots.

Usage (CI runs this from the repo root after building and running the
quick benches in build/):

    python3 scripts/check_perf_regression.py \
        --baseline-dir . --current-dir build [--threshold 1.25]

Guarded metrics (the protocol's hot paths):

  BENCH_paillier.json   BM_Encryption/* and BM_ScalarMul* ns_per_iter —
                        the kernels every pipeline stage is made of.
  BENCH_system.json     su_request_total_ms per scaling / pack_sweep row
                        (matched on paillier_bits, channels, blocks,
                        num_threads, pack_slots) — the end-to-end Figure 5
                        request latency, packed and unpacked.

Exits 1 when any guarded metric is more than `threshold`x slower than the
committed snapshot, 2 when a snapshot/run file is missing or unparseable.
Quick-mode measurement windows are short, so the default threshold is a
generous 1.25x: real regressions on these paths (an extra modexp, a lost
CRT/fusion/packing win) are 2x-class, far above the noise floor.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys

PAILLIER_PATTERNS = ("BM_Encryption/*", "BM_ScalarMul*")
SYSTEM_SECTIONS = ("scaling", "pack_sweep")
SYSTEM_KEY = ("paillier_bits", "channels", "blocks", "num_threads", "pack_slots")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def paillier_checks(baseline, current):
    base = {r["name"]: r["ns_per_iter"] for r in baseline.get("results", [])}
    cur = {r["name"]: r["ns_per_iter"] for r in current.get("results", [])}
    for name in sorted(base):
        if not any(fnmatch.fnmatch(name, p) for p in PAILLIER_PATTERNS):
            continue
        if name in cur:
            yield f"paillier {name}", base[name], cur[name]


def system_checks(baseline, current):
    for section in SYSTEM_SECTIONS:
        base = {
            tuple(r.get(k, 1) for k in SYSTEM_KEY): r["su_request_total_ms"]
            for r in baseline.get(section, [])
        }
        cur = {
            tuple(r.get(k, 1) for k in SYSTEM_KEY): r["su_request_total_ms"]
            for r in current.get(section, [])
        }
        for key in sorted(base):
            if key in cur:
                label = "n={} C={} B={} t={} k={}".format(*key)
                yield f"su_request {section} {label}", base[key], cur[key]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=".",
                    help="directory holding the committed BENCH_*.json")
    ap.add_argument("--current-dir", default="build",
                    help="directory holding the fresh --quick BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when current > threshold * baseline")
    args = ap.parse_args()

    checks = []
    checks.extend(paillier_checks(
        load(f"{args.baseline_dir}/BENCH_paillier.json"),
        load(f"{args.current_dir}/BENCH_paillier.json")))
    checks.extend(system_checks(
        load(f"{args.baseline_dir}/BENCH_system.json"),
        load(f"{args.current_dir}/BENCH_system.json")))

    if not checks:
        print("error: no overlapping guarded metrics between baseline and "
              "current runs", file=sys.stderr)
        sys.exit(2)

    failures = 0
    print(f"{'metric':58s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for label, base, cur in checks:
        ratio = cur / base if base > 0 else float("inf")
        status = "ok" if ratio <= args.threshold else "REGRESSION"
        if status != "ok":
            failures += 1
        print(f"{label:58s} {base:12.1f} {cur:12.1f} {ratio:6.2f}x  {status}")

    if failures:
        print(f"\n{failures} metric(s) regressed beyond {args.threshold}x; "
              "if intentional, regenerate the committed snapshots "
              "(EXPERIMENTS.md microbench recipe).", file=sys.stderr)
        sys.exit(1)
    print(f"\nAll {len(checks)} guarded metrics within {args.threshold}x.")


if __name__ == "__main__":
    main()
