#!/usr/bin/env python3
"""Perf-regression guard: fresh --quick bench JSON vs the committed snapshots.

Usage (CI runs this from the repo root after building and running the
quick benches in build/):

    python3 scripts/check_perf_regression.py \
        --baseline-dir . --current-dir build [--threshold 1.25]

Guarded metrics (the protocol's hot paths):

  BENCH_paillier.json   BM_Encryption/* and BM_ScalarMul* ns_per_iter —
                        the kernels every pipeline stage is made of.
  BENCH_system.json     su_request_total_ms and stp_convert_ms_per_entry
                        per scaling / pack_sweep row (matched on
                        paillier_bits, channels, blocks, num_threads,
                        pack_slots) — the end-to-end Figure 5 request
                        latency and the STP conversion hot loop; plus
                        requests_per_sec per throughput row (matched on
                        transport, mode, concurrency) — the DESIGN.md §3.5
                        multi-SU engine and the §3.7 socket path.
                        requests_per_sec is higher-is-better, so its guard
                        direction is inverted: the check fails when
                        current < baseline / threshold. The sim rows are
                        derived from deterministic virtual time, so any
                        drop is a protocol change (extra round-trips, lost
                        batching), not host noise; the transport=tcp rows
                        are wall clock over real loopback sockets and use
                        the looser --tcp-threshold (default 2.0).

Three guards run within the *current* run only (no baseline). The
shard_sweep rows pair durability off/on at each shard count, and WAL-on
requests_per_sec must stay within `--wal-threshold` (default 1.15, i.e.
<= 15% overhead) of the WAL-off row measured moments earlier on the same
host — write-ahead durability is journal-on-the-fold, and must never tax
the serve path. The denial_sweep rows pair the §3.8 prefilter off/on at
each (transport, deny_pct): at deny mixes >= 80% the filter-ON row must be
at least `--fast-deny-factor`x (default 2.0) FASTER — the direction-aware
inverse of every other guard, because the fast-deny path exists purely to
win throughput and losing it is a protocol bug, not noise. And every
denial_sweep row must report decisions_match = 1: the prefilter may only
accelerate denials, never flip a verdict. Host speed cancels out of all
three pairings, so they are safe to gate on wall clock.

The scenario_sweep rows (DESIGN.md §3.9) add two more. ticks_per_sec per
(use_delta, num_sus, ticks) row is guarded against the committed snapshot
like the tcp rows — wall clock, so behind --tcp-threshold. And within the
current run, each fleet size's full/delta pair must show the incremental
update path at least `--delta-speedup-factor`x (default 3.0) cheaper per
update sent (update_ms_per_send: client encrypt + SDC fold + re-probe) —
the whole point of shipping footprint diffs instead of C-row columns is
that cost no longer scales with the grid, and losing the win (deltas
silently degrading to full columns, dirty tracking gone, re-probes going
grid-wide) is a protocol bug, not noise.

The pir_sweep rows (DESIGN.md §3.10) guard the XOR multi-server PIR query
path three ways. Against the committed snapshot, per (transport, channels,
blocks) row: pir_request_ms and pir_scan_ms_per_request are wall clock, so
they ride --tcp-threshold like the other wall-clock rows, while
pir_bytes_per_request is deterministic framing arithmetic and gets the
tight default threshold — a byte-count jump means the codec grew, not the
host slowed down. Within the current run, every row's Paillier/PIR latency
pair must show the PIR path at least `--pir-latency-factor`x (default 10)
faster — the whole point of the mode is replacing per-entry public-key
work with XOR scans, and losing that win (a modexp creeping onto the query
path, scans going super-linear) is a protocol bug, not noise. And every
pir_sweep row must report decisions_match = 1: swapping the privacy
mechanism must never flip a grant/deny verdict.

Exits 1 when any guarded metric is more than `threshold`x worse than the
committed snapshot, 2 when a snapshot/run file is missing or unparseable.
Quick-mode measurement windows are short, so the default threshold is a
generous 1.25x: real regressions on these paths (an extra modexp, a lost
CRT/fusion/packing/batching win) are 2x-class, far above the noise floor.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys

PAILLIER_PATTERNS = ("BM_Encryption/*", "BM_ScalarMul*")
SYSTEM_SECTIONS = ("scaling", "pack_sweep")
SYSTEM_KEY = ("paillier_bits", "channels", "blocks", "num_threads", "pack_slots")
# Lower-is-better per-row metrics; rows from older snapshots may lack the
# per-entry field, so each metric is guarded only where both sides have it.
SYSTEM_METRICS = ("su_request_total_ms", "stp_convert_ms_per_entry")
# Rows predating the socket path carry no "transport" field; they are the
# virtual-time SimulatedNetwork rows, so the key defaults to "sim".
THROUGHPUT_KEY = ("transport", "mode", "concurrency")


def throughput_key(row):
    return (row.get("transport", "sim"), row["mode"], row["concurrency"])


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


# Each check is (label, baseline, current, higher_is_better).


def paillier_checks(baseline, current):
    base = {r["name"]: r["ns_per_iter"] for r in baseline.get("results", [])}
    cur = {r["name"]: r["ns_per_iter"] for r in current.get("results", [])}
    for name in sorted(base):
        if not any(fnmatch.fnmatch(name, p) for p in PAILLIER_PATTERNS):
            continue
        if name in cur:
            yield f"paillier {name}", base[name], cur[name], False


def system_checks(baseline, current):
    for section in SYSTEM_SECTIONS:
        base = {
            tuple(r.get(k, 1) for k in SYSTEM_KEY): r
            for r in baseline.get(section, [])
        }
        cur = {
            tuple(r.get(k, 1) for k in SYSTEM_KEY): r
            for r in current.get(section, [])
        }
        for key in sorted(base):
            if key not in cur:
                continue
            label = "n={} C={} B={} t={} k={}".format(*key)
            for metric in SYSTEM_METRICS:
                if metric in base[key] and metric in cur[key]:
                    yield (f"{metric} {section} {label}", base[key][metric],
                           cur[key][metric], False)


def throughput_checks(baseline, current, threshold, tcp_threshold):
    """Yields full 5-tuples: the tcp rows carry their own threshold.

    Sim rows are virtual-time deterministic, so they get the tight default
    threshold. The transport="tcp" rows are wall clock over real sockets —
    still guarded (a lost pipeline or a per-frame syscall storm is a >2x
    cliff), but behind the looser --tcp-threshold so host jitter cannot
    fail the build.
    """
    base = {
        throughput_key(r): r["requests_per_sec"]
        for r in baseline.get("throughput", [])
    }
    cur = {
        throughput_key(r): r["requests_per_sec"]
        for r in current.get("throughput", [])
    }
    for key in sorted(base):
        if key in cur:
            label = "{} {} x{}".format(*key)
            t = tcp_threshold if key[0] == "tcp" else threshold
            yield f"requests_per_sec {label}", base[key], cur[key], True, t


def durability_checks(current):
    """WAL-on vs WAL-off requests_per_sec, paired per shard count.

    Compares within the current run only: the two rows ran back to back on
    the same host under the same load, so the ratio is the durability cost
    itself, not machine drift. The WAL-off row plays the 'baseline' column.
    """
    rows = current.get("shard_sweep", [])
    off = {r["num_shards"]: r["requests_per_sec"]
           for r in rows if not r["durability"]}
    on = {r["num_shards"]: r["requests_per_sec"]
          for r in rows if r["durability"]}
    for n in sorted(off):
        if n in on:
            yield f"wal_overhead requests_per_sec shards={n}", off[n], on[n], True


def denial_checks(current, factor):
    """Prefilter-on vs prefilter-off requests_per_sec at deny-heavy mixes.

    Within the current run only, like the WAL pair: the two rows of a
    (transport, deny_pct) pair ran back to back on the same host, so the
    ratio is the §3.8 fast-deny win itself. Direction-aware and inverted
    relative to every other guard: the filter-ON row must be at least
    `factor`x FASTER than the filter-off row at deny_pct >= 80 — a one-round
    32-byte FastDenyMsg replacing the blinded-conversion pipeline is a
    multiple-x cliff, so losing it (filter silently off, probes never
    confirming, denials re-entering the full path) trips this even on a
    noisy host. Encoded in the common check tuple by swapping the roles:
    'baseline' = factor * filter-off, 'current' = filter-on, higher-is-
    better with threshold 1.0.
    """
    rows = current.get("denial_sweep", [])
    off = {(r["transport"], r["deny_pct"]): r["requests_per_sec"]
           for r in rows if not r["filter"]}
    on = {(r["transport"], r["deny_pct"]): r["requests_per_sec"]
          for r in rows if r["filter"]}
    for key in sorted(off):
        transport, deny_pct = key
        if deny_pct < 80 or key not in on:
            continue
        yield (f"fast_deny requests_per_sec {transport} deny={deny_pct}%",
               factor * off[key], on[key], True)


# Keyed without the tick count: the committed snapshot is a full-length
# run, CI's --quick run shortens the schedule, and per-tick throughput is
# comparable across schedule lengths.
SCENARIO_KEY = ("use_delta", "num_sus")


def scenario_checks(baseline, current, tcp_threshold):
    """ticks_per_sec per scenario row vs the committed snapshot.

    The scenario engine is wall clock end to end (client crypto + SDC
    pipeline + mobility bookkeeping), so like the tcp rows it rides the
    looser --tcp-threshold; a real loss (requests re-entering the full
    pipeline, update path degrading) is a multiple-x cliff.
    """
    base = {tuple(r[k] for k in SCENARIO_KEY): r["ticks_per_sec"]
            for r in baseline.get("scenario_sweep", [])}
    cur = {tuple(r[k] for k in SCENARIO_KEY): r["ticks_per_sec"]
           for r in current.get("scenario_sweep", [])}
    for key in sorted(base):
        if key in cur:
            label = "scenario ticks_per_sec {} sus={}".format(
                "delta" if key[0] else "full", key[1])
            yield label, base[key], cur[key], True, tcp_threshold


def delta_speedup_checks(current, factor):
    """Incremental vs full-column per-update cost, paired per fleet size.

    Within the current run only, like the WAL and fast-deny pairs: the two
    rows ran the identical seeded schedule back to back, so the
    update_ms_per_send ratio is the §3.9 incremental win itself. Role-swap
    encoding: 'current' = factor * delta cost, lower-is-better with
    threshold 1.0, so the check fails exactly when the delta path is less
    than `factor`x cheaper per update than the full-column path.
    """
    rows = current.get("scenario_sweep", [])
    full = {(r["num_sus"], r["ticks"]): r["update_ms_per_send"]
            for r in rows if not r["use_delta"]}
    delta = {(r["num_sus"], r["ticks"]): r["update_ms_per_send"]
             for r in rows if r["use_delta"]}
    for key in sorted(full):
        if key in delta and delta[key] > 0:
            yield (f"delta_speedup update_ms_per_send sus={key[0]} "
                   f"ticks={key[1]}", full[key], factor * delta[key], False)


PIR_KEY = ("transport", "channels", "blocks")
# Wall-clock per-row metrics guarded against the committed snapshot behind
# the looser --tcp-threshold (lower is better).
PIR_WALL_METRICS = ("pir_request_ms", "pir_scan_ms_per_request")


def pir_snapshot_checks(baseline, current, threshold, tcp_threshold):
    """pir_sweep latency / scan / wire bytes vs the committed snapshot.

    Yields full 5-tuples like throughput_checks: the wall-clock metrics
    carry --tcp-threshold (host jitter must not fail the build; a real
    loss — a modexp on the query path, the scan kernel degrading to
    byte-at-a-time — is a multiple-x cliff), while pir_bytes_per_request
    is deterministic codec arithmetic and carries the tight default
    threshold.
    """
    base = {tuple(r[k] for k in PIR_KEY): r
            for r in baseline.get("pir_sweep", [])}
    cur = {tuple(r[k] for k in PIR_KEY): r
           for r in current.get("pir_sweep", [])}
    for key in sorted(base):
        if key not in cur:
            continue
        label = "pir {} C={} B={}".format(*key)
        for metric in PIR_WALL_METRICS:
            if base[key].get(metric, 0) > 0 and metric in cur[key]:
                yield (f"{metric} {label}", base[key][metric],
                       cur[key][metric], False, tcp_threshold)
        if base[key].get("pir_bytes_per_request", 0) > 0:
            yield (f"pir_bytes_per_request {label}",
                   base[key]["pir_bytes_per_request"],
                   cur[key]["pir_bytes_per_request"], False, threshold)


def pir_floor_checks(current, factor):
    """PIR vs Paillier query latency, paired within every pir_sweep row.

    Within the current run only, like the WAL / fast-deny / delta pairs:
    both paths served the identical seeded world moments apart on the same
    host, so the latency ratio is the §3.10 win itself. Role-swap
    encoding: 'current' = factor * PIR latency, lower-is-better with
    threshold 1.0, so the check fails exactly when the PIR path is less
    than `factor`x faster than the blinded-conversion path at the matched
    grid.
    """
    for r in current.get("pir_sweep", []):
        if r.get("pir_request_ms", 0) <= 0:
            continue
        label = "pir_latency_floor {} C={} B={}".format(
            r["transport"], r["channels"], r["blocks"])
        yield (label, r["paillier_request_ms"],
               factor * r["pir_request_ms"], False)


def pir_decision_checks(current):
    """Every pir_sweep row must report decisions_match == 1.

    Both the Paillier and the PIR serve of each request are compared to
    the PlainWatch oracle inside the bench; a 0 here means one privacy
    mechanism flipped a grant/deny verdict — always a bug, never noise.
    """
    for r in current.get("pir_sweep", []):
        label = "decisions_match pir {} C={} B={}".format(
            r["transport"], r["channels"], r["blocks"])
        yield label, 1.0, float(r["decisions_match"]), True


def decision_checks(current):
    """Every denial_sweep row must report decisions_match == 1.

    The prefilter is only a fast path: a row where any grant/deny verdict
    deviated from the constructed mix means a false denial (or a false
    grant) escaped the test suites onto the bench workload — always a bug,
    never noise, so the 'threshold' is exact.
    """
    for r in current.get("denial_sweep", []):
        label = "decisions_match {} deny={}% filter={}".format(
            r["transport"], r["deny_pct"], "on" if r["filter"] else "off")
        # baseline 1 (expected), current value, lower-is-worse inverted via
        # higher_is_better so a 0 yields ratio inf -> REGRESSION.
        yield label, 1.0, float(r["decisions_match"]), True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=".",
                    help="directory holding the committed BENCH_*.json")
    ap.add_argument("--current-dir", default="build",
                    help="directory holding the fresh --quick BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when current > threshold * baseline")
    ap.add_argument("--wal-threshold", type=float, default=1.15,
                    help="fail when WAL-on requests_per_sec < WAL-off / this "
                         "(durability overhead cap, within the current run)")
    ap.add_argument("--tcp-threshold", type=float, default=2.0,
                    help="threshold for the transport=tcp throughput rows "
                         "(wall clock over real sockets, so looser than the "
                         "virtual-time rows)")
    ap.add_argument("--fast-deny-factor", type=float, default=2.0,
                    help="fail when the prefilter-on requests_per_sec at a "
                         ">=80%% deny mix is below this multiple of the "
                         "prefilter-off row (within the current run)")
    ap.add_argument("--delta-speedup-factor", type=float, default=3.0,
                    help="fail when the scenario sweep's incremental update "
                         "path is less than this many times cheaper per "
                         "update sent than the full-column path (within the "
                         "current run)")
    ap.add_argument("--pir-latency-factor", type=float, default=10.0,
                    help="fail when the PIR query path is less than this "
                         "many times faster than the Paillier path at the "
                         "matched grid (within the current run)")
    args = ap.parse_args()

    # Each check is (label, baseline, current, higher_is_better, threshold);
    # the WAL-overhead pairs carry their own tighter threshold.
    checks = []
    checks.extend((*c, args.threshold) for c in paillier_checks(
        load(f"{args.baseline_dir}/BENCH_paillier.json"),
        load(f"{args.current_dir}/BENCH_paillier.json")))
    system_baseline = load(f"{args.baseline_dir}/BENCH_system.json")
    system_current = load(f"{args.current_dir}/BENCH_system.json")
    checks.extend((*c, args.threshold)
                  for c in system_checks(system_baseline, system_current))
    checks.extend(throughput_checks(system_baseline, system_current,
                                    args.threshold, args.tcp_threshold))
    checks.extend((*c, args.wal_threshold)
                  for c in durability_checks(system_current))
    checks.extend((*c, 1.0)
                  for c in denial_checks(system_current,
                                         args.fast_deny_factor))
    checks.extend(scenario_checks(system_baseline, system_current,
                                  args.tcp_threshold))
    checks.extend((*c, 1.0)
                  for c in delta_speedup_checks(system_current,
                                                args.delta_speedup_factor))
    checks.extend((*c, 1.0) for c in decision_checks(system_current))
    checks.extend(pir_snapshot_checks(system_baseline, system_current,
                                      args.threshold, args.tcp_threshold))
    checks.extend((*c, 1.0)
                  for c in pir_floor_checks(system_current,
                                            args.pir_latency_factor))
    checks.extend((*c, 1.0) for c in pir_decision_checks(system_current))

    if not checks:
        print("error: no overlapping guarded metrics between baseline and "
              "current runs", file=sys.stderr)
        sys.exit(2)

    failures = 0
    print(f"{'metric':62s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for label, base, cur, higher_is_better, threshold in checks:
        # Normalize so ratio > 1 always means "current is worse".
        if higher_is_better:
            ratio = base / cur if cur > 0 else float("inf")
        else:
            ratio = cur / base if base > 0 else float("inf")
        status = "ok" if ratio <= threshold else "REGRESSION"
        if status != "ok":
            failures += 1
        print(f"{label:62s} {base:12.1f} {cur:12.1f} {ratio:6.2f}x  {status}")

    if failures:
        print(f"\n{failures} metric(s) regressed beyond their threshold; "
              "if intentional, regenerate the committed snapshots "
              "(EXPERIMENTS.md microbench recipe).", file=sys.stderr)
        sys.exit(1)
    print(f"\nAll {len(checks)} guarded metrics passed.")


if __name__ == "__main__":
    main()
